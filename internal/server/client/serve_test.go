package client

import (
	"context"
	"errors"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"ldbcsnb/internal/bench"
	"ldbcsnb/internal/driver"
	"ldbcsnb/internal/query"
	"ldbcsnb/internal/schema"
	"ldbcsnb/internal/server"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/workload"
)

// The dataset and parameter pools are generated once per test binary; each
// test loads its own store (Shutdown marks the served store closed, so a
// shared one would poison later tests).
var (
	fixOnce  sync.Once
	fixEnv   *bench.Env
	fixPools *workload.ParamPools
)

func fixture(t testing.TB) (*bench.Env, *workload.ParamPools) {
	t.Helper()
	fixOnce.Do(func() {
		fixEnv = bench.NewEnvData(150, 42)
		fixPools = driver.PreparePools(fixEnv.Full, 42, false)
	})
	return fixEnv, fixPools
}

func newTestStore(t testing.TB, env *bench.Env) *store.Store {
	t.Helper()
	st := store.New()
	schema.RegisterIndexes(st)
	if err := schema.LoadDimensions(st); err != nil {
		t.Fatal(err)
	}
	if err := schema.LoadParallel(st, env.Bulk, 4); err != nil {
		t.Fatal(err)
	}
	return st
}

// startServer boots a server on a loopback port with its own store. The
// returned shutdown func is idempotent and also registered as a cleanup.
func startServer(t testing.TB, mut func(*server.Config)) (*server.Server, string, func()) {
	t.Helper()
	env, pools := fixture(t)
	cfg := server.Config{Store: newTestStore(t, env), Pools: pools, Seed: 42}
	if mut != nil {
		mut(&cfg)
	}
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	var once sync.Once
	shutdown := func() {
		once.Do(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				t.Errorf("shutdown: %v", err)
			}
			if err := <-done; err != nil {
				t.Errorf("serve: %v", err)
			}
		})
	}
	t.Cleanup(shutdown)
	return srv, ln.Addr().String(), shutdown
}

func TestServeRoundTripAllClasses(t *testing.T) {
	srv, addr, _ := startServer(t, nil)
	cl := New(Options{Addr: addr, Seed: 1})
	defer cl.Close()

	cases := []struct {
		name  string
		class byte
		op    byte
	}{
		{"ping", server.ClassPing, 0},
		{"complex-q1", server.ClassComplex, 1},
		{"complex-q9", server.ClassComplex, 9},
		{"short-chain", server.ClassShort, 0},
		{"bi-1", server.ClassBI, 1},
		{"write", server.ClassWrite, 0},
	}
	for i, tc := range cases {
		req := server.Request{Class: tc.class, Op: tc.op, ReqID: uint64(i + 1), DeadlineMs: 5000, Seed: uint64(i) * 977}
		resp, err := cl.Do(&req)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if resp.Status != server.StatusOK {
			t.Fatalf("%s: status %d (%q)", tc.name, resp.Status, resp.Message)
		}
		if resp.ReqID != req.ReqID || resp.Class != req.Class || resp.Op != req.Op {
			t.Fatalf("%s: echo mismatch: %+v", tc.name, resp)
		}
	}
	// Bad query numbers are errors, not crashes, and the conn survives.
	resp, err := cl.Do(&server.Request{Class: server.ClassComplex, Op: 99, ReqID: 100})
	if err != nil || resp.Status != server.StatusError {
		t.Fatalf("out-of-range op: resp %+v err %v", resp, err)
	}
	if st := srv.Stats(); st.Served < int64(len(cases)) || st.Errored != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestServeDeclarativeQuery(t *testing.T) {
	srv, addr, _ := startServer(t, nil)
	cl := New(Options{Addr: addr, Seed: 3})
	defer cl.Close()

	// A param-free aggregate must count every person in the fixture.
	resp, err := cl.Do(&server.Request{Class: server.ClassQuery, ReqID: 1, DeadlineMs: 5000, Query: `match ?p : Person return count(*)`})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != server.StatusOK || resp.Rows != 1 {
		t.Fatalf("count query: status %d rows %d (%q)", resp.Status, resp.Rows, resp.Message)
	}
	// The standard registry texts bind their parameters server-side from
	// the curated pools using the request seed.
	for i, spec := range query.Registry {
		resp, err := cl.Do(&server.Request{Class: server.ClassQuery, ReqID: uint64(10 + i), DeadlineMs: 5000, Seed: uint64(i) * 131, Query: spec.Text})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if resp.Status != server.StatusOK {
			t.Fatalf("%s: status %d (%q)", spec.Name, resp.Status, resp.Message)
		}
	}
	// Malformed text is an error response, not a dead connection.
	resp, err = cl.Do(&server.Request{Class: server.ClassQuery, ReqID: 99, Query: `match nonsense`})
	if err != nil || resp.Status != server.StatusError {
		t.Fatalf("bad query: resp %+v err %v", resp, err)
	}
	resp, err = cl.Do(&server.Request{Class: server.ClassPing, ReqID: 100})
	if err != nil || resp.Status != server.StatusOK {
		t.Fatalf("ping after bad query: resp %+v err %v", resp, err)
	}
	if st := srv.Stats(); st.Errored != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestServeDeadlineExpiresMidQuery(t *testing.T) {
	// A 1ns deadline is already expired when the server builds the request
	// context, so the scan is guaranteed to hit cancellation mid-query: it
	// must unwind cooperatively and answer TIMEOUT, never hang or crash.
	_, addr, _ := startServer(t, func(c *server.Config) {
		c.DefaultDeadline = time.Nanosecond
	})
	cl := New(Options{Addr: addr, Seed: 2})
	defer cl.Close()
	// Ops whose scans make well over cancelEvery read calls at this scale,
	// so the cooperative cancellation point is guaranteed to be reached.
	for _, op := range []byte{1, 3, 11, 12} {
		resp, err := cl.Do(&server.Request{Class: server.ClassComplex, Op: op, ReqID: uint64(op), Seed: 31 * uint64(op)})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != server.StatusTimeout {
			t.Fatalf("q%d with expired deadline: status %d, want TIMEOUT", op, resp.Status)
		}
	}
}

// TestOverloadShedsInsteadOfCollapsing is the serving layer's end-to-end
// acceptance test: an open-loop arrival stream at 2x the interactive
// class's measured capacity must degrade cleanly — every arrival is
// answered (OK, RETRY_AFTER or TIMEOUT; never an error or a wedged
// connection), admitted-request latency stays within the collapse bound
// (5x the unloaded p99, floored against scheduler jitter), and no request
// is held past its deadline by more than one admission-queue tick. On a
// multi-core host the excess arrives concurrently and the shed counter
// fires; a single-core host serializes CPU-bound handlers in the Go
// scheduler before the gate can see pressure, so the deterministic
// shed-count pin lives in internal/server's wire-level overload tests,
// which saturate the gate directly.
func TestOverloadShedsInsteadOfCollapsing(t *testing.T) {
	const (
		slots    = 2
		tick     = 50 * time.Millisecond
		deadline = 100 * time.Millisecond
	)
	_, addr, _ := startServer(t, func(c *server.Config) {
		c.Interactive = server.GateConfig{Slots: slots, Queue: 4, QueueTick: tick}
		c.DefaultDeadline = deadline
	})
	cl := New(Options{Addr: addr, Seed: 3})
	defer cl.Close()

	// The heavy complex ops (ms-scale at this dataset size): saturating the
	// gate with them keeps the required arrival rate low enough that a
	// single test process can actually generate 2x capacity.
	heavyOps := []byte{1, 3, 11, 12}
	complexReq := func(i int) *server.Request {
		return &server.Request{
			Class:      server.ClassComplex,
			Op:         heavyOps[i%len(heavyOps)],
			ReqID:      uint64(i + 1),
			DeadlineMs: uint32(deadline.Milliseconds()),
			Seed:       uint64(i) * 131,
		}
	}

	// Unloaded baseline: sequential requests, one in flight. Capacity is
	// calibrated from the server-reported execution time (client latency
	// would fold in RTT and dial overhead, understating what the slots can
	// actually absorb and making "2x" a non-overload).
	var base driver.LatencyStats
	var serverMicrosSum uint64
	for i := 0; i < 80; i++ {
		t0 := time.Now()
		resp, err := cl.Do(complexReq(i))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != server.StatusOK {
			t.Fatalf("unloaded request %d: status %d (%q)", i, resp.Status, resp.Message)
		}
		base.Add(time.Since(t0))
		serverMicrosSum += resp.ServerMicros
	}
	baseP99 := base.Percentile(99)
	meanService := float64(serverMicrosSum) / float64(base.Count) / 1e6 // seconds
	capacity := float64(slots) / meanService                            // requests/second

	// Overload: an open-loop arrival stream at 2x capacity. The schedule
	// is absolute so slow iterations issue late arrivals back to back
	// instead of silently lowering the rate; in-flight requests are capped
	// (as in the real open-loop driver) so the generator itself never
	// becomes an unbounded queue of dialing goroutines.
	const n = 2000
	gap := time.Duration(float64(time.Second) / (2 * capacity))
	sem := make(chan struct{}, 128)
	var (
		mu        sync.Mutex
		okStats   driver.LatencyStats
		shed      int64
		timedOut  int64
		errored   int64
		transport int64
		dropped   int64
		maxMicros uint64
	)
	var wg sync.WaitGroup
	start := time.Now()
	next := start
	for i := 0; i < n; i++ {
		next = next.Add(gap)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		select {
		case sem <- struct{}{}:
		default:
			dropped++
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			resp, err := cl.Do(complexReq(1000 + i))
			lat := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if transport == 0 {
					t.Logf("first transport failure: %v", err)
				}
				transport++
				return
			}
			if resp.ServerMicros > maxMicros {
				maxMicros = resp.ServerMicros
			}
			switch resp.Status {
			case server.StatusOK:
				okStats.Add(lat)
			case server.StatusRetryAfter:
				shed++
			case server.StatusTimeout:
				timedOut++
			default:
				errored++
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	t.Logf("2x capacity (%.0f req/s offered): %d ok, %d shed, %d timeout, %d generator drops in %v; ok p99 %v (unloaded %v)",
		2*capacity, okStats.Count, shed, timedOut, dropped, elapsed, okStats.Percentile(99), baseP99)

	if errored > 0 || transport > 0 {
		t.Fatalf("overload produced %d errors, %d transport failures — shedding must be clean", errored, transport)
	}
	if okStats.Count == 0 {
		t.Fatal("overload admitted nothing — shedding collapsed into denial of service")
	}
	// Conservation: every arrival is accounted for — answered or
	// deliberately dropped at the generator, never lost or wedged.
	if got := int64(okStats.Count) + shed + timedOut + dropped; got != n {
		t.Fatalf("accounted for %d of %d arrivals", got, n)
	}

	// Admitted-latency bound: within 5x of the unloaded p99. The floor
	// absorbs scheduler jitter when the baseline p99 is sub-millisecond
	// (128 outstanding CPU-bound requests on a small host queue in the Go
	// scheduler, invisible to admission); collapse — unbounded queueing —
	// would blow past it by orders of magnitude, and the deadline bound
	// below caps it structurally.
	bound := 5 * baseP99
	if floor := 50 * time.Millisecond; bound < floor {
		bound = floor
	}
	if got := okStats.Percentile(99); got > bound {
		t.Fatalf("admitted p99 %v exceeds %v (5x unloaded p99 %v) — latency collapsed under overload", got, bound, baseP99)
	}

	// Deadline bound: no response — admitted, shed or timed out — was held
	// past its deadline by more than one admission-queue tick.
	if limit := uint64((deadline + tick).Microseconds()); maxMicros > limit {
		t.Fatalf("a request was held %dµs, beyond deadline+tick = %dµs", maxMicros, limit)
	}
}

func TestFaultDropTornFramesDoNotWedgeServer(t *testing.T) {
	srv, addr, _ := startServer(t, nil)
	cl := New(Options{Addr: addr, Seed: 4, RetryMax: 0,
		Faults: FaultConfig{DropEvery: 1}})
	defer cl.Close()
	_, err := cl.Do(&server.Request{Class: server.ClassShort, ReqID: 1, Seed: 9})
	if !errors.Is(err, ErrGaveUp) {
		t.Fatalf("dropped request: err %v, want ErrGaveUp", err)
	}
	if c := cl.Counters(); c.FaultsInjected == 0 || c.GaveUp != 1 {
		t.Fatalf("counters %+v", c)
	}
	// The server saw a torn frame and closed the conn; it must still serve.
	cl2 := New(Options{Addr: addr, Seed: 5})
	defer cl2.Close()
	resp, err := cl2.Do(&server.Request{Class: server.ClassShort, ReqID: 2, Seed: 10, DeadlineMs: 5000})
	if err != nil || resp.Status != server.StatusOK {
		t.Fatalf("after torn frame: resp %+v err %v", resp, err)
	}
	if srv.Stats().BadFrames == 0 {
		t.Fatal("torn frame not counted")
	}
}

func TestFaultGarbageFrameTripsGuardAndRetriesRecover(t *testing.T) {
	srv, addr, _ := startServer(t, nil)
	// Every other send claims an absurd frame length; with retries every
	// request must still complete.
	cl := New(Options{Addr: addr, Seed: 6, RetryMax: 3, RetryBase: time.Millisecond,
		Faults: FaultConfig{GarbageEvery: 2}})
	defer cl.Close()
	for i := 0; i < 10; i++ {
		resp, err := cl.Do(&server.Request{Class: server.ClassShort, ReqID: uint64(i + 1), Seed: uint64(i), DeadlineMs: 5000})
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.Status != server.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.Status)
		}
	}
	c := cl.Counters()
	if c.FaultsInjected == 0 || c.Retries == 0 {
		t.Fatalf("counters %+v: garbage schedule never fired", c)
	}
	if srv.Stats().BadFrames == 0 {
		t.Fatal("max-frame guard never tripped")
	}
}

func TestFaultStallWithinReadTimeoutSurvives(t *testing.T) {
	_, addr, _ := startServer(t, nil) // default 2s whole-frame read timeout
	cl := New(Options{Addr: addr, Seed: 7,
		Faults: FaultConfig{StallEvery: 1, StallDuration: 50 * time.Millisecond}})
	defer cl.Close()
	resp, err := cl.Do(&server.Request{Class: server.ClassShort, ReqID: 1, Seed: 3, DeadlineMs: 5000})
	if err != nil || resp.Status != server.StatusOK {
		t.Fatalf("stalled-but-valid frame: resp %+v err %v", resp, err)
	}
}

func TestFaultSlowLorisIsCutByReadDeadline(t *testing.T) {
	srv, addr, _ := startServer(t, func(c *server.Config) {
		c.ReadTimeout = 80 * time.Millisecond
	})
	// 28 frame bytes at 20ms each: the frame would need 560ms, the server
	// allows 80ms from the first byte — the conn must be cut.
	cl := New(Options{Addr: addr, Seed: 8, RetryMax: 0,
		Faults: FaultConfig{SlowLorisEvery: 1, LorisDelay: 20 * time.Millisecond}})
	defer cl.Close()
	if _, err := cl.Do(&server.Request{Class: server.ClassShort, ReqID: 1, Seed: 4}); err == nil {
		t.Fatal("slow-loris request succeeded; read deadline did not cut it")
	}
	if srv.Stats().BadFrames == 0 {
		t.Fatal("loris cut not counted as a bad frame")
	}
}

// TestServeSmokeGoroutineLeak drives a short faulty open-loop run and
// asserts the server winds down to the baseline goroutine count: no
// leaked conn handlers, gate waiters or query executions. This is the CI
// serve-smoke gate (run under -race via `make serve-smoke`).
func TestServeSmokeGoroutineLeak(t *testing.T) {
	fixture(t) // generation workers out of the baseline
	before := runtime.NumGoroutine()

	func() {
		_, addr, shutdown := startServer(t, func(c *server.Config) {
			c.Interactive = server.GateConfig{Slots: 2, Queue: 4, QueueTick: 10 * time.Millisecond}
			c.DefaultDeadline = 50 * time.Millisecond
			c.ReadTimeout = 200 * time.Millisecond
		})
		rep, err := RunOpenLoop(LoadConfig{
			Client: Options{
				Addr: addr, RetryMax: 2, RetryBase: time.Millisecond, Seed: 9,
				Faults: FaultConfig{DropEvery: 17, GarbageEvery: 23, StallEvery: 29, StallDuration: 5 * time.Millisecond},
			},
			Rate:     400,
			Duration: time.Second,
			Seed:     9,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.TotalIssued() == 0 {
			t.Fatal("open-loop issued nothing")
		}
		shutdown()
	}()

	// The last handlers unwind asynchronously after Shutdown returns their
	// conns closed; poll with a deadline instead of asserting instantly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines %d before, %d after shutdown — leak:\n%s", before, now, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
