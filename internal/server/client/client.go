// Package client is the serving layer's counterpart to internal/server: a
// retrying protocol client (capped exponential backoff with deterministic
// jitter, honoring the server's RETRY_AFTER hints), a conn-layer fault
// injector (dropped connections, stalled reads, garbage frames,
// slow-loris trickle) for exercising the server's degradation paths, and
// an open-loop Poisson load generator (openloop.go) reporting
// p50/p99/p999 plus shed/timeout/retry counts — the paper's
// scheduled-start-time driver model applied over the wire.
package client

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ldbcsnb/internal/server"
	"ldbcsnb/internal/xrand"
)

// Options configures a Client.
type Options struct {
	// Addr is the server's host:port.
	Addr string
	// DialTimeout bounds connection establishment; IOTimeout bounds one
	// request/response round trip on the wire. IOTimeout must exceed the
	// request deadline plus one queue tick or slow (but valid) TIMEOUT
	// responses are misread as transport failures.
	DialTimeout time.Duration
	IOTimeout   time.Duration
	// RetryMax is how many times one request may be re-sent after a shed
	// or transport failure (0 = never retry). TIMEOUT responses are final:
	// the deadline already expired, a retry would be a different request.
	RetryMax int
	// RetryBase and RetryCap shape the exponential backoff: attempt n
	// sleeps ~RetryBase·2ⁿ (half-jittered), never more than RetryCap, and
	// never less than the server's RETRY_AFTER hint.
	RetryBase time.Duration
	RetryCap  time.Duration
	// Seed derives the per-request jitter streams.
	Seed uint64
	// Faults, when any field is non-zero, injects connection-layer faults
	// on a deterministic schedule (see FaultConfig).
	Faults FaultConfig
}

func (o *Options) applyDefaults() {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.IOTimeout <= 0 {
		o.IOTimeout = 5 * time.Second
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 5 * time.Millisecond
	}
	if o.RetryCap <= 0 {
		o.RetryCap = 500 * time.Millisecond
	}
}

// Counters aggregates the client-side outcome counts across requests.
type Counters struct {
	// Retries counts re-sent requests (after shed or transport failure);
	// Transport counts failed round trips (dial, write, read, or a fault
	// the injector made us inflict on ourselves); GaveUp counts requests
	// that exhausted RetryMax without a final response.
	Retries, Transport, GaveUp int64
	// FaultsInjected counts deliberate conn-layer faults.
	FaultsInjected int64
}

// Client issues protocol requests over a pooled set of connections with
// retry/backoff. Safe for concurrent use.
type Client struct {
	opts Options

	mu   sync.Mutex
	free []*conn // guarded by mu

	sendSeq  atomic.Uint64 // fault-injection schedule position
	retries  atomic.Int64
	transp   atomic.Int64
	gaveUp   atomic.Int64
	injected atomic.Int64
}

// New builds a Client over opts.
func New(opts Options) *Client {
	opts.applyDefaults()
	return &Client{opts: opts}
}

// Counters snapshots the outcome counters.
func (cl *Client) Counters() Counters {
	return Counters{
		Retries:        cl.retries.Load(),
		Transport:      cl.transp.Load(),
		GaveUp:         cl.gaveUp.Load(),
		FaultsInjected: cl.injected.Load(),
	}
}

// Close drops every pooled connection.
func (cl *Client) Close() {
	cl.mu.Lock()
	free := cl.free
	cl.free = nil
	cl.mu.Unlock()
	for _, c := range free {
		c.nc.Close() //snb:errok read side already drained; nothing to flush
	}
}

// conn is one pooled connection.
type conn struct {
	nc  net.Conn
	br  *bufio.Reader
	buf []byte
}

func (cl *Client) getConn() (*conn, error) {
	cl.mu.Lock()
	if n := len(cl.free); n > 0 {
		c := cl.free[n-1]
		cl.free = cl.free[:n-1]
		cl.mu.Unlock()
		return c, nil
	}
	cl.mu.Unlock()
	nc, err := net.DialTimeout("tcp", cl.opts.Addr, cl.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	return &conn{nc: nc, br: bufio.NewReaderSize(nc, 4096)}, nil
}

func (cl *Client) putConn(c *conn) {
	cl.mu.Lock()
	cl.free = append(cl.free, c)
	cl.mu.Unlock()
}

// Do issues one request, retrying shed responses and transport failures
// with capped exponential backoff + jitter (honoring RETRY_AFTER hints).
// It returns the final response: possibly StatusRetryAfter when RetryMax
// was exhausted while the server kept shedding — the caller counts that as
// shed load, not an error. ErrGaveUp is returned only when every attempt
// died on the transport.
func (cl *Client) Do(req *server.Request) (server.Response, error) {
	rnd := xrand.New(cl.opts.Seed, req.ReqID, uint64(req.Class))
	backoff := cl.opts.RetryBase
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, err := cl.attempt(req)
		if err == nil {
			if resp.Status != server.StatusRetryAfter {
				return resp, nil
			}
			if attempt >= cl.opts.RetryMax {
				// Out of retries while the server sheds: surface the shed
				// response as final.
				return resp, nil
			}
			// Honor the server's hint; never sleep less than it.
			hint := time.Duration(resp.RetryAfterMs) * time.Millisecond
			cl.sleepBackoff(rnd, &backoff, hint)
			cl.retries.Add(1)
			continue
		}
		lastErr = err
		cl.transp.Add(1)
		if attempt >= cl.opts.RetryMax {
			cl.gaveUp.Add(1)
			return server.Response{}, fmt.Errorf("%w: %v", ErrGaveUp, lastErr)
		}
		cl.sleepBackoff(rnd, &backoff, 0)
		cl.retries.Add(1)
	}
}

// ErrGaveUp marks a request whose every attempt failed on the transport.
var ErrGaveUp = fmt.Errorf("client: retries exhausted")

// sleepBackoff sleeps the jittered backoff (at least hint), then doubles
// the backoff toward RetryCap. Jitter is half-fixed half-random so
// synchronized retry stampedes decorrelate.
func (cl *Client) sleepBackoff(rnd *xrand.Rand, backoff *time.Duration, hint time.Duration) {
	d := *backoff
	if d > cl.opts.RetryCap {
		d = cl.opts.RetryCap
	}
	jittered := d/2 + time.Duration(rnd.Float64()*float64(d/2))
	if jittered < hint {
		jittered = hint
	}
	time.Sleep(jittered)
	*backoff = d * 2
	if *backoff > cl.opts.RetryCap {
		*backoff = cl.opts.RetryCap
	}
}

// attempt performs one wire round trip, injecting a scheduled fault when
// the injector says so. Failed attempts close their connection (its
// stream state is unknown); successes return it to the pool.
func (cl *Client) attempt(req *server.Request) (server.Response, error) {
	c, err := cl.getConn()
	if err != nil {
		return server.Response{}, err
	}
	fault := cl.opts.Faults.next(cl.sendSeq.Add(1))
	if fault != faultNone {
		cl.injected.Add(1)
	}

	c.buf = server.AppendRequest(c.buf[:0], req)
	c.nc.SetDeadline(time.Now().Add(cl.opts.IOTimeout)) //snb:errok deadline errors surface on the I/O itself
	if err := cl.opts.Faults.send(c.nc, c.buf, fault); err != nil {
		c.nc.Close() //snb:errok already failed; best-effort teardown
		return server.Response{}, err
	}
	payload, err := server.ReadFrame(c.br, c.buf[:0], server.DefaultMaxFrame)
	if err != nil {
		c.nc.Close() //snb:errok already failed; best-effort teardown
		return server.Response{}, err
	}
	resp, err := server.ParseResponse(payload)
	if err != nil {
		c.nc.Close() //snb:errok already failed; best-effort teardown
		return server.Response{}, err
	}
	cl.putConn(c)
	return resp, nil
}
