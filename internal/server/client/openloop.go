package client

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ldbcsnb/internal/bi"
	"ldbcsnb/internal/driver"
	"ldbcsnb/internal/server"
	"ldbcsnb/internal/workload"
	"ldbcsnb/internal/xrand"
)

// The open-loop driver: requests are issued on a Poisson schedule at a
// target arrival rate regardless of how fast responses come back — the
// source paper's driver model, where the workload is defined by scheduled
// operation start times, not by closed-loop think time. Under overload an
// open-loop generator keeps arriving, which is exactly what exposes the
// difference between a server that sheds (flat admitted-latency, explicit
// shed counts) and one that collapses (unbounded queueing).

// Mix weights the request classes of the open-loop stream. Weights are
// relative, not percentages.
type Mix struct {
	Complex, Short, BI, Write float64
}

// DefaultMix approximates the paper's time-share calibration (§4):
// complex and short reads dominate, writes ~10%, BI a light analyst lane.
var DefaultMix = Mix{Complex: 30, Short: 50, BI: 5, Write: 15}

// LoadConfig configures one open-loop run.
type LoadConfig struct {
	// Client carries the address, retry policy and fault schedule.
	Client Options
	// Rate is the target arrival rate in requests/second; Duration the
	// issuing window (responses are drained past it).
	Rate     float64
	Duration time.Duration
	// MaxInFlight bounds concurrently outstanding requests; arrivals
	// beyond it are dropped and counted (the generator refuses to become
	// an unbounded queue itself). Default 256.
	MaxInFlight int
	// DeadlineMs is the per-request deadline sent on the wire (0 = server
	// default).
	DeadlineMs uint32
	// Mix weights the class draw (zero value = DefaultMix).
	Mix Mix
	// Seed drives the arrival schedule, class draw and parameter seeds.
	Seed uint64
}

// ClassStats aggregates one class's outcomes over a run.
type ClassStats struct {
	Name string
	// Issued counts requests sent; OK/Shed/Timeout/Errors/Failed split the
	// final outcomes (Failed = transport gave up).
	Issued, OK, Shed, Timeout, Errors, Failed int64
	// Latency is the client-observed completion time of OK requests —
	// first send to final response, retries included.
	Latency driver.LatencyStats
	// ServerMicros accumulates the server-reported time of OK responses,
	// separating server time from network + retry time.
	ServerMicros int64
}

// Report is one open-loop run's outcome.
type Report struct {
	// Rate and Elapsed describe the achieved run; Target the requested
	// rate.
	Target  float64
	Rate    float64
	Elapsed time.Duration
	// Dropped counts arrivals discarded at MaxInFlight.
	Dropped int64
	// Client carries the transport/retry counters.
	Client Counters
	// Classes indexes per-class outcomes: complex, short, bi, write.
	Classes [4]ClassStats
}

// classIndex maps a protocol class to its Report slot.
func classIndex(class byte) int {
	switch class {
	case server.ClassComplex:
		return 0
	case server.ClassShort:
		return 1
	case server.ClassBI:
		return 2
	default:
		return 3
	}
}

// TotalIssued sums issued requests across classes.
func (r *Report) TotalIssued() int64 {
	var n int64
	for i := range r.Classes {
		n += r.Classes[i].Issued
	}
	return n
}

// RunOpenLoop issues requests on a Poisson schedule for cfg.Duration,
// waits for outstanding responses, and returns the aggregated report.
func RunOpenLoop(cfg LoadConfig) (*Report, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("client: arrival rate %v must be positive", cfg.Rate)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("client: duration %v must be positive", cfg.Duration)
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 256
	}
	mix := cfg.Mix
	if mix.Complex == 0 && mix.Short == 0 && mix.BI == 0 && mix.Write == 0 {
		mix = DefaultMix
	}

	cl := New(cfg.Client)
	defer cl.Close()

	rep := &Report{Target: cfg.Rate}
	rep.Classes[0].Name = "complex"
	rep.Classes[1].Name = "short"
	rep.Classes[2].Name = "bi"
	rep.Classes[3].Name = "write"
	var mu sync.Mutex // guards rep.Classes aggregation

	sem := make(chan struct{}, cfg.MaxInFlight)
	var wg sync.WaitGroup
	var reqID atomic.Uint64
	var dropped atomic.Int64

	rnd := xrand.New(cfg.Seed, xrand.PurposeShortRead, 0xfeed)
	meanGapNs := 1e9 / cfg.Rate
	start := time.Now()
	next := start
	for {
		// Poisson arrivals: exponential inter-arrival gaps at the target
		// rate. The schedule is absolute (next is advanced, not reset), so
		// a slow dispatch iteration is caught up by issuing late arrivals
		// back to back instead of silently lowering the rate.
		next = next.Add(time.Duration(rnd.Exp(meanGapNs)))
		if next.Sub(start) > cfg.Duration {
			break
		}
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}

		req := server.Request{
			ReqID:      reqID.Add(1),
			DeadlineMs: cfg.DeadlineMs,
			Seed:       rnd.Uint64(),
		}
		req.Class, req.Op = drawClass(&mix, rnd)

		select {
		case sem <- struct{}{}:
		default:
			dropped.Add(1)
			continue
		}
		wg.Add(1)
		go func(req server.Request) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			resp, err := cl.Do(&req)
			lat := time.Since(t0)
			ci := classIndex(req.Class)
			mu.Lock()
			defer mu.Unlock()
			cs := &rep.Classes[ci]
			cs.Issued++
			if err != nil {
				cs.Failed++
				return
			}
			switch resp.Status {
			case server.StatusOK:
				cs.OK++
				cs.Latency.Add(lat)
				cs.ServerMicros += int64(resp.ServerMicros)
			case server.StatusRetryAfter:
				cs.Shed++
			case server.StatusTimeout:
				cs.Timeout++
			default:
				cs.Errors++
			}
		}(req)
	}
	wg.Wait()

	rep.Elapsed = time.Since(start)
	rep.Dropped = dropped.Load()
	rep.Client = cl.Counters()
	if secs := rep.Elapsed.Seconds(); secs > 0 {
		rep.Rate = float64(rep.TotalIssued()) / secs
	}
	return rep, nil
}

// drawClass picks one request class (and operation) by mix weight.
func drawClass(m *Mix, rnd *xrand.Rand) (byte, byte) {
	total := m.Complex + m.Short + m.BI + m.Write
	x := rnd.Float64() * total
	switch {
	case x < m.Complex:
		return server.ClassComplex, byte(1 + rnd.Intn(workload.NumComplexQueries))
	case x < m.Complex+m.Short:
		return server.ClassShort, 0
	case x < m.Complex+m.Short+m.BI:
		return server.ClassBI, byte(1 + rnd.Intn(bi.NumQueries))
	default:
		return server.ClassWrite, 0
	}
}
