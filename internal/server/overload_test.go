package server

import (
	"bufio"
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"ldbcsnb/internal/store"
)

// Wire-level overload behavior, with gate saturation manufactured
// directly (slot tokens held) so the test is deterministic on any core
// count: a single-core host serializes CPU-bound handlers in the Go
// scheduler, so genuine concurrent pressure cannot be produced through
// the socket alone. The open-loop 2x test in internal/server/client
// covers the end-to-end envelope; this test pins the shed contract:
// saturated gates answer RETRY_AFTER with a hint within one queue tick,
// deadlines bound queue residency, and draining the pressure restores
// service.

// startWireServer boots a Server over st on a loopback port.
func startWireServer(t *testing.T, st *store.Store, cfg Config) (*Server, string) {
	t.Helper()
	cfg.Store = st
	srv := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// wireRequest sends one request on its own connection and decodes the
// response. Safe to call from any goroutine.
func wireRequest(addr string, req *Request) (Response, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return Response{}, err
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(10 * time.Second)) //snb:errok test conn; errors surface on the I/O
	if _, err := nc.Write(AppendRequest(nil, req)); err != nil {
		return Response{}, err
	}
	payload, err := ReadFrame(bufio.NewReaderSize(nc, 4096), nil, DefaultMaxFrame)
	if err != nil {
		return Response{}, err
	}
	return ParseResponse(payload)
}

// roundTrip is wireRequest for the test's main goroutine.
func roundTrip(t *testing.T, addr string, req *Request) Response {
	t.Helper()
	resp, err := wireRequest(addr, req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestWireSaturatedGateShedsWithinOneTick(t *testing.T) {
	const (
		tick     = 40 * time.Millisecond
		deadline = 500 * time.Millisecond // far above tick: the tick sheds first
	)
	srv, addr := startWireServer(t, store.New(), Config{
		Write: GateConfig{Slots: 1, Queue: 2, QueueTick: tick},
	})

	// Saturate: hold the only write slot from outside.
	g := srv.gates[ClassWrite]
	<-g.slots
	defer func() { g.slots <- struct{}{} }()

	// A volley of 2x the gate's total capacity (slots + queue): every
	// request must come back RETRY_AFTER with a backoff hint, none may be
	// held past one queue tick beyond its arrival.
	const volley = 2 * (1 + 2)
	var wg sync.WaitGroup
	results := make([]Response, volley)
	errs := make([]error, volley)
	for i := 0; i < volley; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = wireRequest(addr, &Request{
				Class: ClassWrite, ReqID: uint64(i + 1), DeadlineMs: uint32(deadline.Milliseconds()),
			})
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	for i, resp := range results {
		if resp.Status != StatusRetryAfter {
			t.Fatalf("request %d on saturated gate: status %d, want RETRY_AFTER", i, resp.Status)
		}
		if resp.RetryAfterMs == 0 {
			t.Fatalf("request %d: shed without a backoff hint", i)
		}
		if held := time.Duration(resp.ServerMicros) * time.Microsecond; held > 4*tick {
			// Server-side residency: one tick, with generous single-core
			// scheduling slack (the contract is tick-bounded, not instant).
			t.Fatalf("request %d held %v server-side, far past one %v tick", i, held, tick)
		}
	}
	if got := srv.Stats().Shed; got != volley {
		t.Fatalf("shed count %d, want %d", got, volley)
	}

	// Releasing the slot restores service: the same request now commits.
	g.slots <- struct{}{}
	resp := roundTrip(t, addr, &Request{Class: ClassWrite, ReqID: 99, DeadlineMs: 1000})
	<-g.slots // rebalance for the deferred release
	if resp.Status != StatusOK {
		t.Fatalf("after pressure drained: status %d (%q), want OK", resp.Status, resp.Message)
	}
}

func TestWireDeadlineBoundsQueueResidency(t *testing.T) {
	// Tick far above the deadline: the request queues, its deadline
	// expires, and the answer is TIMEOUT no later than deadline + one
	// tick — the serving layer's latency contract.
	const (
		tick     = 5 * time.Second
		deadline = 50 * time.Millisecond
	)
	srv, addr := startWireServer(t, store.New(), Config{
		Write: GateConfig{Slots: 1, Queue: 2, QueueTick: tick},
	})
	g := srv.gates[ClassWrite]
	<-g.slots
	defer func() { g.slots <- struct{}{} }()

	start := time.Now()
	resp := roundTrip(t, addr, &Request{Class: ClassWrite, ReqID: 1, DeadlineMs: uint32(deadline.Milliseconds())})
	wait := time.Since(start)
	if resp.Status != StatusTimeout {
		t.Fatalf("queued past deadline: status %d, want TIMEOUT", resp.Status)
	}
	if wait > deadline+tick {
		t.Fatalf("answered after %v, beyond deadline %v + tick %v", wait, deadline, tick)
	}
}

func TestWireBIShedFirstUnderInteractivePressure(t *testing.T) {
	srv, addr := startWireServer(t, store.New(), Config{
		Interactive: GateConfig{Slots: 1, Queue: 2, QueueTick: 30 * time.Millisecond},
	})
	restore := drainInteractive(srv)
	defer restore()

	resp := roundTrip(t, addr, &Request{Class: ClassBI, Op: 1, ReqID: 1, DeadlineMs: 1000})
	if resp.Status != StatusRetryAfter {
		t.Fatalf("BI under interactive pressure: status %d, want RETRY_AFTER", resp.Status)
	}
	if resp.RetryAfterMs == 0 {
		t.Fatal("BI shed without a backoff hint")
	}
}
