package server

import (
	"context"
	"testing"
	"time"

	"ldbcsnb/internal/query"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/workload"
)

func TestGateAdmitsUpToSlots(t *testing.T) {
	g := newGate(GateConfig{Slots: 2, Queue: 1, QueueTick: 10 * time.Millisecond})
	ctx := context.Background()
	if g.acquire(ctx) != admitOK || g.acquire(ctx) != admitOK {
		t.Fatal("free slots not admitted immediately")
	}
	g.release()
	g.release()
	if g.admitted.Load() != 2 {
		t.Fatalf("admitted = %d", g.admitted.Load())
	}
}

func TestGateQueueResidencyBoundedByOneTick(t *testing.T) {
	const tick = 30 * time.Millisecond
	g := newGate(GateConfig{Slots: 1, Queue: 2, QueueTick: tick})
	if g.acquire(context.Background()) != admitOK {
		t.Fatal("first acquire")
	}
	// The slot never frees: the queued waiter must be shed after exactly
	// one tick, not held indefinitely.
	start := time.Now()
	if got := g.acquire(context.Background()); got != admitShed {
		t.Fatalf("queued acquire = %v, want shed", got)
	}
	if wait := time.Since(start); wait < tick || wait > 10*tick {
		t.Fatalf("queue residency %v, want ~%v", wait, tick)
	}
	if g.shed.Load() != 1 {
		t.Fatalf("shed = %d", g.shed.Load())
	}
}

func TestGateShedsImmediatelyWhenQueueFull(t *testing.T) {
	g := newGate(GateConfig{Slots: 1, Queue: 1, QueueTick: time.Second})
	if g.acquire(context.Background()) != admitOK {
		t.Fatal("first acquire")
	}
	// Park one waiter in the queue (it will wait the long tick).
	parked := make(chan admitOutcome, 1)
	go func() { parked <- g.acquire(context.Background()) }()
	for g.queued.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	// Queue is at capacity: the next arrival is rejected without blocking.
	start := time.Now()
	if got := g.acquire(context.Background()); got != admitShed {
		t.Fatalf("overflow acquire = %v, want shed", got)
	}
	if wait := time.Since(start); wait > 100*time.Millisecond {
		t.Fatalf("overflow shed blocked %v, want immediate", wait)
	}
	if !g.pressured() {
		t.Fatal("gate with a waiter must report pressure")
	}
	if hint := g.retryHintMs(); hint < uint32(g.tick.Milliseconds()) {
		t.Fatalf("retry hint %dms below one tick", hint)
	}
	// Freeing the slot admits the parked waiter.
	g.release()
	if got := <-parked; got != admitOK {
		t.Fatalf("parked waiter = %v, want admitted", got)
	}
}

func TestGateHonorsContextDeadlineWhileQueued(t *testing.T) {
	g := newGate(GateConfig{Slots: 1, Queue: 2, QueueTick: time.Second})
	if g.acquire(context.Background()) != admitOK {
		t.Fatal("first acquire")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if got := g.acquire(ctx); got != admitTimeout {
		t.Fatalf("queued acquire = %v, want timeout", got)
	}
	if wait := time.Since(start); wait > 500*time.Millisecond {
		t.Fatalf("deadline honored after %v, want ~20ms", wait)
	}
	if g.timedOut.Load() != 1 {
		t.Fatalf("timedOut = %d", g.timedOut.Load())
	}
}

// drainInteractive empties the interactive gate's slot pool and simulates
// a queued waiter, putting the gate under pressure.
func drainInteractive(s *Server) (restore func()) {
	g := s.gates[ClassComplex]
	n := 0
	for {
		select {
		case <-g.slots:
			n++
			continue
		default:
		}
		break
	}
	g.queued.Add(1)
	return func() {
		g.queued.Add(-1)
		for i := 0; i < n; i++ {
			g.slots <- struct{}{}
		}
	}
}

func TestDispatchShedsBIFirstUnderInteractivePressure(t *testing.T) {
	s := New(Config{})
	defer s.cancel()
	restore := drainInteractive(s)
	defer restore()

	resp := s.dispatch(&Request{Class: ClassBI, Op: 1, ReqID: 7}, workload.NewScratch(), query.NewScratch())
	if resp.Status != StatusRetryAfter {
		t.Fatalf("BI under interactive pressure: status %d, want RETRY_AFTER", resp.Status)
	}
	if resp.RetryAfterMs == 0 {
		t.Fatal("shed BI response carries no backoff hint")
	}
	if resp.ReqID != 7 {
		t.Fatalf("reqID %d not echoed", resp.ReqID)
	}
	if s.gates[ClassBI].shed.Load() != 1 {
		t.Fatal("BI shed not counted against the BI gate")
	}
}

func TestDispatchAnswersRetryAfterWhileDraining(t *testing.T) {
	s := New(Config{})
	defer s.cancel()
	s.draining.Store(true)
	for _, class := range []byte{ClassPing, ClassComplex, ClassWrite} {
		resp := s.dispatch(&Request{Class: class}, workload.NewScratch(), query.NewScratch())
		if resp.Status != StatusRetryAfter {
			t.Fatalf("class %d while draining: status %d, want RETRY_AFTER", class, resp.Status)
		}
	}
}

func TestDispatchDeadlineExpiresWhileQueued(t *testing.T) {
	// The write gate has one slot (held below) and a tick far beyond the
	// request deadline, so the deadline — not the tick — must end the wait.
	s := New(Config{Write: GateConfig{Slots: 1, Queue: 2, QueueTick: 5 * time.Second}})
	defer s.cancel()
	if s.gates[ClassWrite].acquire(context.Background()) != admitOK {
		t.Fatal("hold write slot")
	}
	defer s.gates[ClassWrite].release()

	start := time.Now()
	resp := s.dispatch(&Request{Class: ClassWrite, DeadlineMs: 30}, workload.NewScratch(), query.NewScratch())
	if resp.Status != StatusTimeout {
		t.Fatalf("queued past deadline: status %d, want TIMEOUT", resp.Status)
	}
	if wait := time.Since(start); wait > time.Second {
		t.Fatalf("timed out after %v, want ~30ms", wait)
	}
}

func TestDispatchWriteAfterCloseIsRetryable(t *testing.T) {
	st := store.New()
	st.MarkClosed()
	s := New(Config{Store: st})
	defer s.cancel()
	resp := s.dispatch(&Request{Class: ClassWrite, DeadlineMs: 1000}, workload.NewScratch(), query.NewScratch())
	if resp.Status != StatusRetryAfter {
		t.Fatalf("write on closed store: status %d (%q), want RETRY_AFTER", resp.Status, resp.Message)
	}
}
