package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ldbcsnb/internal/bi"
	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/query"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/workload"
	"ldbcsnb/internal/xrand"
)

// serveWriteBucket namespaces the IDs the write class creates, far above
// both the generated dataset's minute buckets and the in-process driver
// write lane (1<<32), so server writes never collide with either.
const serveWriteBucket = int64(1) << 33

// Config configures a Server. Zero-value fields take serving defaults
// (see applyDefaults).
type Config struct {
	// Store serves every request; Persist, when set, is flushed during
	// Shutdown so drained commits are durable before the process exits.
	Store   *store.Store
	Persist *store.Persistent
	// Pools is the curated parameter-pool set requests bind against
	// (driver.PreparePools); Seed is the server half of the binding seed,
	// mixed with each request's seed for deterministic parameters.
	Pools *workload.ParamPools
	Seed  uint64

	// Interactive admits ClassComplex and ClassShort, BI admits ClassBI,
	// Write admits ClassWrite. Interactive pressure sheds BI arrivals
	// first (see dispatch).
	Interactive, BI, Write GateConfig

	// DefaultDeadline applies when a request carries DeadlineMs == 0;
	// MaxDeadline caps what a request may ask for.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration

	// ReadTimeout bounds reading one whole request frame once its first
	// byte arrived (the slow-loris guard); IdleTimeout bounds waiting for
	// that first byte. WriteTimeout bounds writing one response.
	ReadTimeout  time.Duration
	IdleTimeout  time.Duration
	WriteTimeout time.Duration

	// MaxFrame rejects oversized frame claims; MaxConns caps concurrent
	// connections (excess accepts are closed immediately).
	MaxFrame int
	MaxConns int
}

func (c *Config) applyDefaults() {
	c.Interactive = c.Interactive.withDefaults(4, 8, 20*time.Millisecond)
	c.BI = c.BI.withDefaults(1, 2, 50*time.Millisecond)
	c.Write = c.Write.withDefaults(2, 8, 20*time.Millisecond)
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 100 * time.Millisecond
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 5 * time.Second
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 2 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 60 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 2 * time.Second
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.MaxConns <= 0 {
		c.MaxConns = 1024
	}
}

// Stats is a point-in-time snapshot of the server's request counters.
type Stats struct {
	// Accepted and Rejected count connections (Rejected = over MaxConns).
	Accepted, Rejected int64
	// Served counts completed requests (any status); Shed, TimedOut and
	// Errored split the non-OK outcomes. BadFrames counts protocol
	// violations that closed a connection.
	Served, Shed, TimedOut, Errored, BadFrames int64
}

// Server is one serving instance. Create with New, start with Serve (or
// ListenAndServe), stop with Shutdown.
type Server struct {
	cfg   Config
	gates [numClasses]*gate // nil for ClassPing

	baseCtx context.Context
	cancel  context.CancelFunc

	ln       net.Listener
	draining atomic.Bool
	inflight atomic.Int64   // admitted request executions
	connWG   sync.WaitGroup // connection handlers

	connMu sync.Mutex
	conns  map[net.Conn]struct{} // guarded by connMu

	writeSeq atomic.Uint64

	// Compiled-plan cache for ClassQuery, keyed by query text. Plans are
	// compiled without cardinality hints so one plan serves every view
	// epoch; the cache is wiped wholesale when it fills (ad-hoc texts are
	// few and repetitive in practice — clients resend the same strings).
	planMu    sync.Mutex
	planCache map[string]*query.Plan

	accepted, rejected atomic.Int64
	served, errored    atomic.Int64
	badFrames          atomic.Int64
}

// New builds a Server over cfg. The store and pools must be loaded; the
// server itself holds no dataset state beyond them.
func New(cfg Config) *Server {
	cfg.applyDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		baseCtx: ctx,
		cancel:  cancel,
		conns:   make(map[net.Conn]struct{}),
	}
	s.gates[ClassComplex] = newGate(cfg.Interactive)
	s.gates[ClassShort] = s.gates[ClassComplex] // one interactive gate
	s.gates[ClassBI] = newGate(cfg.BI)
	s.gates[ClassWrite] = newGate(cfg.Write)
	s.gates[ClassQuery] = s.gates[ClassBI] // ad-hoc queries ride the BI lane
	s.planCache = make(map[string]*query.Plan)
	return s
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown closes it. It returns
// nil after a clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.connMu.Lock()
	s.ln = ln
	s.connMu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.baseCtx.Err() != nil || s.draining.Load() {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		if int(s.liveConns()) >= s.cfg.MaxConns {
			s.rejected.Add(1)
			c.Close() //snb:errok conn rejected before any request; nothing in flight to lose
			continue
		}
		s.accepted.Add(1)
		s.trackConn(c, true)
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			defer s.trackConn(c, false)
			defer c.Close() //snb:errok every response write reported its own error; the close has nothing left to flush
			s.handleConn(c)
		}()
	}
}

// Addr returns the bound listen address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.connMu.Lock()
	ln := s.ln
	s.connMu.Unlock()
	if ln == nil {
		return nil
	}
	return ln.Addr()
}

func (s *Server) trackConn(c net.Conn, add bool) {
	s.connMu.Lock()
	if add {
		s.conns[c] = struct{}{}
	} else {
		delete(s.conns, c)
	}
	s.connMu.Unlock()
}

func (s *Server) liveConns() int {
	s.connMu.Lock()
	n := len(s.conns)
	s.connMu.Unlock()
	return n
}

// Shutdown drains the server: stop accepting, answer new requests with
// RETRY_AFTER, wait for in-flight requests to finish (bounded by ctx),
// then close every connection and flush the group-commit lanes so every
// acknowledged write is durable. Safe to call once; returns the flush
// error, if any.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.connMu.Lock()
	ln := s.ln
	s.connMu.Unlock()
	if ln != nil {
		ln.Close() //snb:errok drain path; a failed listener close cannot lose data
	}

	// Wait for in-flight request executions, bounded by ctx. A polled
	// atomic (not a WaitGroup — Add racing Wait at zero is disallowed, and
	// requests admit themselves concurrently with this drain) at a 1ms
	// cadence; connections sitting idle in a read are force-closed below.
	for s.inflight.Load() > 0 {
		if ctx.Err() != nil {
			// Past the drain budget: cancel mid-query, remaining requests
			// unwind cooperatively with StatusTimeout.
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Unblock handlers parked in reads and wait them out.
	s.cancel()
	s.connMu.Lock()
	for c := range s.conns {
		c.Close() //snb:errok forced close to unblock parked reads; durability is flushed by Persist.Close below
	}
	s.connMu.Unlock()
	s.connWG.Wait()

	// Flush the durability pipeline: drained commits must survive the
	// process. Persistent.Close fences later commits with ErrStoreClosed.
	if s.cfg.Persist != nil {
		return s.cfg.Persist.Close()
	}
	if s.cfg.Store != nil {
		s.cfg.Store.MarkClosed()
	}
	return nil
}

// Stats snapshots the request counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Accepted:  s.accepted.Load(),
		Rejected:  s.rejected.Load(),
		Served:    s.served.Load(),
		Errored:   s.errored.Load(),
		BadFrames: s.badFrames.Load(),
	}
	seen := map[*gate]bool{}
	for _, g := range s.gates {
		if g == nil || seen[g] {
			continue
		}
		seen[g] = true
		st.Shed += g.shed.Load()
		st.TimedOut += g.timedOut.Load()
	}
	return st
}

// handleConn serves one connection: read a frame, dispatch, respond,
// repeat. Requests on one connection run sequentially (pipelining across
// connections, not within one), so per-conn scratch state needs no locks.
// Any protocol violation — garbage frame, oversized claim, stalled read —
// closes the connection; well-behaved clients reconnect.
func (s *Server) handleConn(c net.Conn) {
	br := bufio.NewReaderSize(c, 4096)
	var frameBuf, respBuf []byte
	sc := workload.NewScratch()
	qsc := query.WrapScratch(sc) // shares the era discipline with sc
	for {
		if s.baseCtx.Err() != nil {
			return
		}
		// Idle phase: wait for the first byte of the next frame.
		c.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)) //snb:errok deadline errors surface on the read itself
		if _, err := br.Peek(1); err != nil {
			return
		}
		// Framed phase: the whole frame must arrive within ReadTimeout of
		// its first byte — a slow-loris peer trickling bytes is cut here.
		c.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout)) //snb:errok deadline errors surface on the read itself
		payload, err := ReadFrame(br, frameBuf, s.cfg.MaxFrame)
		if err != nil {
			s.badFrames.Add(1)
			return
		}
		frameBuf = payload[:0]
		req, err := ParseRequest(payload)
		if err != nil {
			// The stream may be desynced (wrong-length frame): answer with
			// reqID 0 and close.
			s.badFrames.Add(1)
			resp := Response{Status: StatusError, Message: err.Error()}
			s.writeResponse(c, &respBuf, &resp)
			return
		}
		resp := s.dispatch(&req, sc, qsc)
		s.served.Add(1)
		if !s.writeResponse(c, &respBuf, &resp) {
			return
		}
	}
}

// writeResponse frames and writes one response under the write deadline,
// reporting whether the connection is still usable.
func (s *Server) writeResponse(c net.Conn, buf *[]byte, resp *Response) bool {
	*buf = AppendResponse((*buf)[:0], resp)
	c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)) //snb:errok deadline errors surface on the write itself
	_, err := c.Write(*buf)
	return err == nil
}

// dispatch runs one request through admission, deadline setup and query
// execution, producing its response. ServerMicros covers everything from
// arrival: admission wait included, so clients can separate server time
// from network time.
func (s *Server) dispatch(req *Request, sc *workload.Scratch, qsc *query.Scratch) Response {
	start := time.Now()
	resp := Response{Class: req.Class, Op: req.Op, ReqID: req.ReqID}
	finish := func() Response {
		resp.ServerMicros = uint64(time.Since(start).Microseconds())
		return resp
	}

	if req.Class == ClassPing {
		resp.Status = StatusOK
		if s.draining.Load() {
			// Pings stay cheap during drain but tell the client to go away.
			resp.Status = StatusRetryAfter
			resp.RetryAfterMs = 100
		}
		return finish()
	}
	if s.draining.Load() {
		resp.Status = StatusRetryAfter
		resp.RetryAfterMs = 100
		return finish()
	}

	g := s.gates[req.Class]

	// Overload policy: BI is shed first — and ad-hoc declarative queries
	// with it, since they share the BI lane. The interactive gate queueing
	// at all means the store is saturated with latency-sensitive work; an
	// arriving analytical scan would hold its slot for orders of magnitude
	// longer than a point read, so it is rejected outright with a hint
	// instead of competing.
	if (req.Class == ClassBI || req.Class == ClassQuery) && s.gates[ClassComplex].pressured() {
		g.shed.Add(1)
		resp.Status = StatusRetryAfter
		resp.RetryAfterMs = s.gates[ClassComplex].retryHintMs()
		return finish()
	}

	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMs > 0 {
		deadline = time.Duration(req.DeadlineMs) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, deadline)
	defer cancel()

	switch g.acquire(ctx) {
	case admitShed:
		resp.Status = StatusRetryAfter
		resp.RetryAfterMs = g.retryHintMs()
		return finish()
	case admitTimeout:
		resp.Status = StatusTimeout
		return finish()
	}
	defer g.release()

	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	rows, err := s.runQuery(ctx, req, sc, qsc)
	switch {
	case err == nil:
		resp.Status = StatusOK
		resp.Rows = rows
	case errors.Is(err, store.ErrQueryCanceled) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		resp.Status = StatusTimeout
	case errors.Is(err, store.ErrStoreClosed):
		// Shutdown raced the request past the draining check: the store is
		// gone but the process may be replaced — retryable.
		resp.Status = StatusRetryAfter
		resp.RetryAfterMs = 100
	default:
		s.errored.Add(1)
		resp.Status = StatusError
		resp.Message = err.Error()
	}
	return finish()
}

// planFor returns the cached compiled plan for one query text, compiling
// and caching it on first sight. Plans are pure functions of the text
// (deterministic planner, no cardinality hints), so cached entries never
// go stale.
func (s *Server) planFor(text string) (*query.Plan, error) {
	s.planMu.Lock()
	defer s.planMu.Unlock()
	if p, ok := s.planCache[text]; ok {
		return p, nil
	}
	q, err := query.Parse(text)
	if err != nil {
		return nil, err
	}
	p, err := query.Compile(q)
	if err != nil {
		return nil, err
	}
	if len(s.planCache) >= 256 {
		s.planCache = make(map[string]*query.Plan)
	}
	s.planCache[text] = p
	return p, nil
}

// runQuery executes one admitted request on the view path (reads) or the
// MVCC commit path (writes).
func (s *Server) runQuery(ctx context.Context, req *Request, sc *workload.Scratch, qsc *query.Scratch) (uint32, error) {
	rnd := xrand.New(s.cfg.Seed, xrand.PurposeShortRead, req.Seed)
	switch req.Class {
	case ClassComplex:
		if req.Op < 1 || int(req.Op) > workload.NumComplexQueries {
			return 0, fmt.Errorf("complex query %d out of range", req.Op)
		}
		v, _, err := s.cfg.Store.AcquireViewChecked()
		if err != nil {
			return 0, err
		}
		spec := &workload.Complex[req.Op-1]
		p := spec.Bind(s.cfg.Pools, rnd)
		res, err := spec.RunViewCtx(ctx, v, sc, p)
		if err != nil {
			return 0, err
		}
		return uint32(len(res.Persons) + len(res.Messages)), nil

	case ClassShort:
		v, _, err := s.cfg.Store.AcquireViewChecked()
		if err != nil {
			return 0, err
		}
		persons := []ids.ID{}
		if n := len(s.cfg.Pools.Persons); n > 0 {
			persons = append(persons, s.cfg.Pools.Persons[rnd.Intn(n)])
		}
		stats, err := workload.RunShortReadChainCtx(ctx, v, workload.DefaultShortReadMix, rnd, persons, nil, nil)
		if err != nil {
			return 0, err
		}
		total := 0
		for _, n := range stats {
			total += n
		}
		return uint32(total), nil

	case ClassBI:
		if req.Op < 1 || int(req.Op) > bi.NumQueries {
			return 0, fmt.Errorf("BI query %d out of range", req.Op)
		}
		v, _, err := s.cfg.Store.AcquireViewChecked()
		if err != nil {
			return 0, err
		}
		spec := &bi.Registry[req.Op-1]
		p := spec.Bind(s.cfg.Pools, rnd)
		res, err := spec.RunViewCtx(ctx, v, sc, p)
		if err != nil {
			return 0, err
		}
		return uint32(res.Rows), nil

	case ClassQuery:
		plan, err := s.planFor(req.Query)
		if err != nil {
			return 0, err
		}
		v, _, err := s.cfg.Store.AcquireViewChecked()
		if err != nil {
			return 0, err
		}
		params := query.StandardParams(s.cfg.Pools, rnd)
		res, err := query.RunViewCtx(ctx, v, qsc, plan, params)
		if err != nil {
			return 0, err
		}
		return uint32(len(res.Rows)), nil

	case ClassWrite:
		// One small insert transaction per request; commits past a store
		// shutdown fail with ErrStoreClosed (mapped to RETRY_AFTER above),
		// never silently.
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		idx := s.writeSeq.Add(1)
		id := ids.Compose(ids.KindPerson, serveWriteBucket+int64(idx>>16), uint32(idx&0xffff))
		tx := s.cfg.Store.Begin()
		err := tx.CreateNode(id, store.Props{
			{Key: store.PropFirstName, Val: store.String("served")},
			{Key: store.PropCreationDate, Val: store.Int64(int64(idx))},
		})
		if err == nil {
			err = tx.Commit()
		} else {
			tx.Abort()
		}
		if err != nil {
			return 0, err
		}
		return 1, nil
	}
	return 0, fmt.Errorf("class %d not executable", req.Class)
}
