package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	in := Request{
		Class:      ClassComplex,
		Op:         13,
		Flags:      0x5a,
		ReqID:      0xdeadbeefcafe,
		DeadlineMs: 250,
		Seed:       0x0123456789abcdef,
	}
	frame := AppendRequest(nil, &in)
	if len(frame) != frameHeaderLen+requestLen {
		t.Fatalf("frame length %d, want %d", len(frame), frameHeaderLen+requestLen)
	}
	payload, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)), nil, DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	in := Response{
		Status:       StatusRetryAfter,
		Class:        ClassBI,
		Op:           7,
		ReqID:        42,
		RetryAfterMs: 60,
		Rows:         9000,
		ServerMicros: 12345,
		Message:      "analyst lane shed",
	}
	frame := AppendResponse(nil, &in)
	payload, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)), nil, DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestQueryRequestRoundTrip(t *testing.T) {
	in := Request{
		Class:      ClassQuery,
		ReqID:      77,
		DeadlineMs: 1000,
		Seed:       31337,
		Query:      `match ?p : Person return count(*)`,
	}
	frame := AppendRequest(nil, &in)
	if len(frame) != frameHeaderLen+requestLen+len(in.Query) {
		t.Fatalf("frame length %d, want %d", len(frame), frameHeaderLen+requestLen+len(in.Query))
	}
	payload, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)), nil, DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
	// An empty query text is a valid frame shape; rejecting the empty
	// program is the parser's job, not the protocol's.
	empty := Request{Class: ClassQuery, ReqID: 78}
	got, err := ParseRequest(AppendRequest(nil, &empty)[frameHeaderLen:])
	if err != nil || got != empty {
		t.Fatalf("empty query round trip: %+v, %v", got, err)
	}
}

func TestParseRequestRejectsBadInput(t *testing.T) {
	if _, err := ParseRequest(make([]byte, requestLen-1)); err == nil {
		t.Fatal("short payload accepted")
	}
	good := AppendRequest(nil, &Request{Class: ClassPing})[frameHeaderLen:]
	bad := append([]byte(nil), good...)
	bad[0] = ProtocolVersion + 1
	if _, err := ParseRequest(bad); err == nil {
		t.Fatal("wrong protocol version accepted")
	}
	bad = append(bad[:0], good...)
	bad[1] = numClasses
	if _, err := ParseRequest(bad); err == nil {
		t.Fatal("out-of-range class accepted")
	}
	// Trailing bytes are the query text for ClassQuery and garbage for
	// every other class.
	bad = append(append(bad[:0], good...), "trailing"...)
	if _, err := ParseRequest(bad); err == nil {
		t.Fatal("non-query class with trailing bytes accepted")
	}
}

func TestReadFrameGuardsOversizedClaims(t *testing.T) {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:], 1<<30)
	_, err := ReadFrame(bufio.NewReader(bytes.NewReader(hdr[:])), nil, DefaultMaxFrame)
	if err == nil {
		t.Fatal("oversized frame claim accepted")
	}
	if !strings.Contains(err.Error(), "frame") {
		t.Fatalf("unhelpful error: %v", err)
	}
}
