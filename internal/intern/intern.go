// Package intern implements a process-wide string interner: every distinct
// string is stored once in a shared append-only byte arena and named by a
// 4-byte Sym. Interning is what lets store.Value hold strings as fixed-width
// scalars — a property value is one machine word plus a tag instead of a
// 16-byte string header pointing at a private allocation — and what
// deduplicates the SNB schema's highly repetitive values (first names,
// browsers, languages, tag and place names) across millions of nodes.
//
// Symbols are only meaningful within one process: they are assigned in
// first-intern order, which depends on load interleaving. Durable formats
// therefore never store raw Syms — the checkpoint writes a dictionary
// section mapping its own dense indexes to strings and re-interns on
// restore (see store/checkpoint.go).
//
// The table is append-only by design: a symbol, once handed out, stays
// valid and keeps its string for the life of the process. That is the right
// trade for a load-then-serve store (the SNB dataset's value domain is
// effectively static); a workload that churns unbounded fresh strings would
// grow the arena without bound.
package intern

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// Sym names one interned string. The zero Sym is the empty string.
type Sym uint32

// arenaChunk is the allocation unit of the string arena. Strings never span
// chunks; a string longer than the chunk size gets a chunk of its own.
const arenaChunk = 1 << 16

// Table is one interner. Intern is safe for concurrent use; Lookup is
// wait-free (an atomic snapshot load plus an index), so it can sit on the
// query hot path — store.Value.Str is one Lookup.
type Table struct {
	mu    sync.RWMutex
	index map[string]Sym

	// strs is the published Sym -> string mapping. It is grown copy-on-
	// write (amortised by doubling) and published atomically, so readers
	// index an immutable snapshot without taking any lock. Every element
	// aliases the arena.
	strs atomic.Pointer[[]string]

	// chunk is the arena chunk currently being filled. Bytes are written
	// once, before the string over them is published, and never again —
	// the invariant that makes the unsafe.String aliases immutable.
	chunk []byte
	arena int64 // total bytes of all chunks allocated
}

// NewTable returns a table containing only the empty string (Sym 0).
func NewTable() *Table {
	t := &Table{index: make(map[string]Sym)}
	strs := make([]string, 1, 64)
	t.index[""] = 0
	t.strs.Store(&strs)
	return t
}

// Intern returns the symbol of s, assigning the next free symbol (and
// copying s into the arena) on first sight.
func (t *Table) Intern(s string) Sym {
	t.mu.RLock()
	y, ok := t.index[s]
	t.mu.RUnlock()
	if ok {
		return y
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if y, ok := t.index[s]; ok {
		return y
	}
	// Copy s into the arena and alias a string over the copied bytes.
	// The bytes are written exactly once (append below), before the
	// publish, so the alias is as immutable as any Go string.
	if len(s) > cap(t.chunk)-len(t.chunk) {
		size := arenaChunk
		if len(s) > size {
			size = len(s)
		}
		t.chunk = make([]byte, 0, size)
		t.arena += int64(size)
	}
	off := len(t.chunk)
	t.chunk = append(t.chunk, s...)
	owned := unsafe.String(unsafe.SliceData(t.chunk[off:off+len(s)]), len(s))

	old := *t.strs.Load()
	y = Sym(len(old))
	// Grow copy-on-write: readers holding the previous snapshot keep a
	// fully valid prefix; in-place appends within capacity only touch
	// indexes beyond every published length.
	next := append(old, owned)
	t.index[owned] = y
	t.strs.Store(&next)
	return y
}

// Lookup returns the string of a symbol. Looking up a symbol never handed
// out by Intern panics — symbols are not arbitrary integers.
func (t *Table) Lookup(y Sym) string {
	return (*t.strs.Load())[y]
}

// Len returns the number of interned strings (including the empty string).
func (t *Table) Len() int {
	return len(*t.strs.Load())
}

// Bytes returns the approximate heap footprint of the table: arena chunks
// plus the published string headers and the index map. It is the
// "string arena" line of the store's memory accounting.
func (t *Table) Bytes() int64 {
	t.mu.RLock()
	n := int64(len(t.index))
	t.mu.RUnlock()
	const mapEntry = 16 + 4 + 8 // key header + sym + bucket overhead, approx
	return t.arena + n*(16+mapEntry)
}

// Default is the process-wide table used by store.Value. One shared table
// (rather than one per store) keeps Value self-contained — a Value's string
// is recoverable without knowing which store produced it — and makes
// symbols directly comparable across stores in one process (the equivalence
// test suites compare values from live and recovered stores).
var Default = NewTable()

// Intern interns s in the default table.
func Intern(s string) Sym { return Default.Intern(s) }

// Lookup resolves y in the default table.
func Lookup(y Sym) string { return Default.Lookup(y) }
