package intern

import (
	"fmt"
	"sync"
	"testing"
)

func TestEmptyStringIsZero(t *testing.T) {
	tb := NewTable()
	if y := tb.Intern(""); y != 0 {
		t.Fatalf("Intern(\"\") = %d, want 0", y)
	}
	if s := tb.Lookup(0); s != "" {
		t.Fatalf("Lookup(0) = %q, want empty", s)
	}
	if n := tb.Len(); n != 1 {
		t.Fatalf("fresh table Len = %d, want 1", n)
	}
}

func TestInternDedupAndLookup(t *testing.T) {
	tb := NewTable()
	a := tb.Intern("alice")
	b := tb.Intern("bob")
	if a == b {
		t.Fatal("distinct strings share a symbol")
	}
	if tb.Intern("alice") != a || tb.Intern("bob") != b {
		t.Fatal("re-interning changed the symbol")
	}
	// A fresh heap copy of equal bytes must dedupe too.
	copyAlice := string([]byte("alice"))
	if tb.Intern(copyAlice) != a {
		t.Fatal("equal bytes from a different allocation got a new symbol")
	}
	if tb.Lookup(a) != "alice" || tb.Lookup(b) != "bob" {
		t.Fatal("Lookup does not return the interned string")
	}
	if tb.Len() != 3 { // "", alice, bob
		t.Fatalf("Len = %d, want 3", tb.Len())
	}
}

// TestInternHugeString pins the arena rule: a string larger than the chunk
// size gets a dedicated chunk instead of being refused or split.
func TestInternHugeString(t *testing.T) {
	tb := NewTable()
	big := make([]byte, arenaChunk*2+17)
	for i := range big {
		big[i] = byte('a' + i%26)
	}
	y := tb.Intern(string(big))
	if got := tb.Lookup(y); got != string(big) {
		t.Fatal("huge string did not round trip")
	}
	if tb.Bytes() < int64(len(big)) {
		t.Fatalf("Bytes() = %d, smaller than the %d-byte payload", tb.Bytes(), len(big))
	}
}

// TestInternConcurrent hammers one table from many goroutines interning an
// overlapping working set, then requires one symbol per distinct string,
// agreed on by every goroutine, with Lookup resolving each back. This is
// the contract store.Value relies on: symbols are stable identities, never
// racy duplicates.
func TestInternConcurrent(t *testing.T) {
	tb := NewTable()
	const (
		workers  = 8
		distinct = 500
		rounds   = 4
	)
	results := make([]map[string]Sym, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			seen := make(map[string]Sym, distinct)
			// Each worker walks the full shared set in a different order
			// (stride coprime with the set size) so first-intern races cover
			// every string and every worker still sees every string.
			strides := [...]int{1, 3, 7, 9, 11, 13, 17, 19}
			for r := 0; r < rounds; r++ {
				for i := 0; i < distinct; i++ {
					k := (i*strides[w%len(strides)] + r) % distinct
					s := fmt.Sprintf("value-%04d", k)
					y := tb.Intern(s)
					if prev, ok := seen[s]; ok && prev != y {
						t.Errorf("worker %d: %q changed symbol %d -> %d", w, s, prev, y)
						return
					}
					seen[s] = y
					if got := tb.Lookup(y); got != s {
						t.Errorf("worker %d: Lookup(%d) = %q, want %q", w, y, got, s)
						return
					}
				}
			}
			results[w] = seen
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for w := 1; w < workers; w++ {
		for s, y := range results[0] {
			if results[w][s] != y {
				t.Fatalf("workers 0 and %d disagree on %q: %d vs %d", w, s, y, results[w][s])
			}
		}
	}
	if got, want := tb.Len(), distinct+1; got != want {
		t.Fatalf("Len = %d, want %d (distinct strings + empty)", got, want)
	}
}

func BenchmarkInternHit(b *testing.B) {
	tb := NewTable()
	tb.Intern("Chrome")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb.Intern("Chrome")
	}
}

func BenchmarkLookup(b *testing.B) {
	tb := NewTable()
	y := tb.Intern("Chrome")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(tb.Lookup(y)) == 0 {
			b.Fatal("empty")
		}
	}
}
