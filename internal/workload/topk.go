package workload

import "sort"

// topK keeps the k best elements of a stream under a strict-weak "ranks
// before" ordering, replacing the sort-everything-then-truncate pattern in
// the LIMIT-k queries: the heap holds at most k elements (the worst kept
// element at the root), so a query over m candidate rows costs O(m log k)
// comparisons and O(k) memory instead of O(m log m) and O(m).
//
// When less is a total order — every SNB query tie-breaks on a unique ID —
// the selected set and its sorted order are byte-identical to sorting the
// full candidate list and truncating, which the view-vs-txn equivalence
// tests rely on.
type topK[T any] struct {
	k    int
	less func(a, b T) bool // true if a ranks strictly before b
	heap []T               // worst-ranked kept element at index 0
}

func newTopK[T any](k int, less func(a, b T) bool) *topK[T] {
	return &topK[T]{k: k, less: less, heap: make([]T, 0, k)}
}

// worse orders the internal heap: the root is the element every other kept
// element ranks before.
func (t *topK[T]) worse(a, b T) bool { return t.less(b, a) }

// Push offers one candidate.
func (t *topK[T]) Push(x T) {
	if t.k <= 0 {
		return
	}
	if len(t.heap) < t.k {
		t.heap = append(t.heap, x)
		t.up(len(t.heap) - 1)
		return
	}
	if t.less(x, t.heap[0]) {
		t.heap[0] = x
		t.down(0)
	}
}

// Sorted returns the kept elements in rank order. It sorts the heap's
// backing array in place; the topK must not be pushed to afterwards.
func (t *topK[T]) Sorted() []T {
	sort.Slice(t.heap, func(i, j int) bool { return t.less(t.heap[i], t.heap[j]) })
	return t.heap
}

func (t *topK[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.worse(t.heap[i], t.heap[parent]) {
			break
		}
		t.heap[i], t.heap[parent] = t.heap[parent], t.heap[i]
		i = parent
	}
}

func (t *topK[T]) down(i int) {
	n := len(t.heap)
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && t.worse(t.heap[l], t.heap[worst]) {
			worst = l
		}
		if r < n && t.worse(t.heap[r], t.heap[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		t.heap[i], t.heap[worst] = t.heap[worst], t.heap[i]
		i = worst
	}
}
