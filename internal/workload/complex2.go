package workload

import (
	"sort"
	"time"

	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/store"
)

// Q8 — Most recent replies: the 20 most recent reply comments to all the
// posts and comments of the person, descending by creation date then
// ascending by comment ID.

// Q8Row is one Q8 result.
type Q8Row struct {
	Comment      ids.ID
	Replier      ids.ID
	CreationDate int64
}

// Q8 runs the query with a bounded top-20 heap over the reply stream.
func Q8[R store.Reader](r R, sc *Scratch, start ids.ID) []Q8Row {
	sc.begin(r)
	top := newTopK(20, func(a, b Q8Row) bool {
		if a.CreationDate != b.CreationDate {
			return a.CreationDate > b.CreationDate
		}
		return a.Comment < b.Comment
	})
	for _, m := range messagesOf(r, start) {
		for _, re := range r.In(m.To, store.EdgeReplyOf) {
			var replier ids.ID
			if cs := r.Out(re.To, store.EdgeHasCreator); len(cs) > 0 {
				replier = cs[0].To
			}
			top.Push(Q8Row{Comment: re.To, Replier: replier, CreationDate: re.Stamp})
		}
	}
	return top.Sorted()
}

// Q9 — Latest posts: the most recent 20 posts and comments from all
// friends or friends-of-friends of the person, created before a given
// date. This is the choke-point example of §3 (Figure 4): the intended
// plan joins friends ⋈ friends (index nested loop), then persons (index
// nested loop), then messages (hash / scan). On the view path the 2-hop
// expansion walks CSR subslices with a dense visited bitset and the
// LIMIT-20 result streams through a bounded heap — §3's intended plan with
// no per-hop materialisation.
func Q9[R store.Reader](r R, sc *Scratch, start ids.ID, maxDate int64) []MessageRow {
	sc.begin(r)
	env, _ := friendsAndFoF(r, sc, start)
	return topMessagesOf(r, env, maxDate, 20)
}

// Q10 — Friend recommendation: friends of friends (excluding direct
// friends and the person) whose horoscope sign matches, scored by the
// difference between their posts about the person's interests and their
// posts about other topics. Top 10 by score descending, person ID
// ascending.

// Q10Row is one Q10 result.
type Q10Row struct {
	Person     ids.ID
	Score      int
	CommonTags int
}

// Q10 runs the query; sign is a zodiac index 0-11 (see ZodiacSign).
func Q10[R store.Reader](r R, sc *Scratch, start ids.ID, sign int) []Q10Row {
	sc.begin(r)
	interests := sc.newSeen()
	for _, e := range r.Out(start, store.EdgeHasInterest) {
		interests.tryMark(e.To)
	}
	// Direct friends (plus start) in one set, the friend list in sc.env.
	direct := sc.newSeen()
	direct.tryMark(start)
	sc.env = sc.env[:0]
	for _, e := range r.Out(start, store.EdgeKnows) {
		if direct.tryMark(e.To) {
			sc.env = append(sc.env, e.To)
		}
	}
	cand := sc.newSeen()
	top := newTopK(10, func(a, b Q10Row) bool {
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.Person < b.Person
	})
	for _, f := range sc.env {
		for _, e := range r.Out(f, store.EdgeKnows) {
			c := e.To
			if direct.has(c) || !cand.tryMark(c) {
				continue
			}
			if ZodiacSign(r.Prop(c, store.PropBirthday).Int()) != sign {
				continue
			}
			common, uncommon, commonTags := 0, 0, 0
			for _, m := range messagesOf(r, c) {
				if m.To.Kind() != ids.KindPost {
					continue
				}
				about := false
				for _, te := range r.Out(m.To, store.EdgeHasTag) {
					if interests.has(te.To) {
						about = true
						break
					}
				}
				if about {
					common++
				} else {
					uncommon++
				}
			}
			for _, te := range r.Out(c, store.EdgeHasInterest) {
				if interests.has(te.To) {
					commonTags++
				}
			}
			top.Push(Q10Row{Person: c, Score: common - uncommon, CommonTags: commonTags})
		}
	}
	return top.Sorted()
}

// ZodiacSign maps a birthday (millis) to a zodiac sign index 0-11
// (0 = Aquarius starting Jan 21; boundaries approximate).
func ZodiacSign(birthdayMillis int64) int {
	t := time.UnixMilli(birthdayMillis).UTC()
	m, d := int(t.Month()), t.Day()
	// Sign changes around the 21st of each month.
	if d >= 21 {
		return m % 12
	}
	return (m + 11) % 12
}

// Q11 — Job referral: friends or friends of friends who work at a company
// in the given country, having started before the given year. Top 10 by
// work-from year ascending, person ID ascending.

// Q11Row is one Q11 result.
type Q11Row struct {
	Person   ids.ID
	Company  string
	WorkFrom int
}

// Q11 runs the query; country is a dict country index.
func Q11[R store.Reader](r R, sc *Scratch, start ids.ID, country int, beforeYear int) []Q11Row {
	sc.begin(r)
	countryNode := ids.DimensionID(ids.KindPlace, uint32(country))
	// (workFrom asc, person asc, company asc): the company tie-break makes
	// the order total for persons holding several qualifying jobs.
	top := newTopK(10, func(a, b Q11Row) bool {
		if a.WorkFrom != b.WorkFrom {
			return a.WorkFrom < b.WorkFrom
		}
		if a.Person != b.Person {
			return a.Person < b.Person
		}
		return a.Company < b.Company
	})
	env, _ := friendsAndFoF(r, sc, start)
	for _, p := range env {
		for _, we := range r.Out(p, store.EdgeWorkAt) {
			if int(we.Stamp) >= beforeYear {
				continue
			}
			located := r.Out(we.To, store.EdgeIsLocatedIn)
			if len(located) == 0 || located[0].To != countryNode {
				continue
			}
			top.Push(Q11Row{
				Person:   p,
				Company:  r.Prop(we.To, store.PropName).Str(),
				WorkFrom: int(we.Stamp),
			})
		}
	}
	return top.Sorted()
}

// Q12 — Expert search: friends who replied (with comments) to posts whose
// tags belong to the given tag class (or its descendants). Top 20 by reply
// count descending, person ID ascending.

// Q12Row is one Q12 result.
type Q12Row struct {
	Person  ids.ID
	Replies int
}

// Q12 runs the query; tagClass is a store TagClass node ID.
func Q12[R store.Reader](r R, sc *Scratch, start ids.ID, tagClass ids.ID) []Q12Row {
	sc.begin(r)
	// Tag-class subtree: BFS over isSubclassOf with sc.aux as the queue.
	inClass := sc.newSeen()
	inClass.tryMark(tagClass)
	sc.aux = append(sc.aux[:0], tagClass)
	for head := 0; head < len(sc.aux); head++ {
		for _, sub := range r.In(sc.aux[head], store.EdgeIsSubclassOf) {
			if inClass.tryMark(sub.To) {
				sc.aux = append(sc.aux, sub.To)
			}
		}
	}
	top := newTopK(20, func(a, b Q12Row) bool {
		if a.Replies != b.Replies {
			return a.Replies > b.Replies
		}
		return a.Person < b.Person
	})
	for _, f := range friendsOf(r, sc, start) {
		replies := 0
		for _, m := range messagesOf(r, f) {
			if m.To.Kind() != ids.KindComment {
				continue
			}
			parents := r.Out(m.To, store.EdgeReplyOf)
			if len(parents) == 0 || parents[0].To.Kind() != ids.KindPost {
				continue
			}
			match := false
			for _, te := range r.Out(parents[0].To, store.EdgeHasTag) {
				types := r.Out(te.To, store.EdgeHasType)
				if len(types) > 0 && inClass.has(types[0].To) {
					match = true
					break
				}
			}
			if match {
				replies++
			}
		}
		if replies > 0 {
			top.Push(Q12Row{Person: f, Replies: replies})
		}
	}
	return top.Sorted()
}

// Q13 — Single shortest path: the length of the shortest knows-path
// between two persons, or -1 if none exists.

// Q13 runs a bidirectional BFS. The distance maps are node-keyed on both
// paths (distances, not membership, so the bitset representation does not
// apply); on the view path the traversal is still lock-free.
func Q13[R store.Reader](r R, sc *Scratch, a, b ids.ID) int {
	sc.begin(r)
	if a == b {
		return 0
	}
	distA := map[ids.ID]int{a: 0}
	distB := map[ids.ID]int{b: 0}
	frontA := []ids.ID{a}
	frontB := []ids.ID{b}
	depth := 0
	for len(frontA) > 0 && len(frontB) > 0 {
		// Expand the smaller frontier one full layer; the minimum over all
		// meets found within the layer is the exact shortest length.
		if len(frontA) > len(frontB) {
			distA, distB = distB, distA
			frontA, frontB = frontB, frontA
		}
		depth++
		best := -1
		var next []ids.ID
		for _, p := range frontA {
			for _, e := range r.Out(p, store.EdgeKnows) {
				if db, ok := distB[e.To]; ok {
					if l := distA[p] + 1 + db; best < 0 || l < best {
						best = l
					}
				}
				if _, ok := distA[e.To]; ok {
					continue
				}
				distA[e.To] = distA[p] + 1
				next = append(next, e.To)
			}
		}
		if best >= 0 {
			return best
		}
		frontA = next
		if depth > 64 {
			break // defensive bound; SNB graphs have tiny diameters
		}
	}
	return -1
}

// Q14 — Weighted paths: all shortest-length knows-paths between two
// persons, weighted by the message interaction between consecutive pairs:
// each comment replying to the other's post adds 1.0, each comment
// replying to the other's comment adds 0.5. Paths are returned sorted by
// weight descending.

// Q14Row is one path with its weight.
type Q14Row struct {
	Path   []ids.ID
	Weight float64
}

// q14PathCap bounds path enumeration on dense graphs.
const q14PathCap = 256

// Q14 runs the query.
func Q14[R store.Reader](r R, sc *Scratch, a, b ids.ID) []Q14Row {
	sc.begin(r)
	if a == b {
		return []Q14Row{{Path: []ids.ID{a}, Weight: 0}}
	}
	// BFS from a recording parent layers until b is reached.
	dist := map[ids.ID]int{a: 0}
	parents := map[ids.ID][]ids.ID{}
	frontier := []ids.ID{a}
	found := false
	for len(frontier) > 0 && !found {
		var next []ids.ID
		for _, p := range frontier {
			for _, e := range r.Out(p, store.EdgeKnows) {
				d, ok := dist[e.To]
				if !ok {
					dist[e.To] = dist[p] + 1
					parents[e.To] = []ids.ID{p}
					next = append(next, e.To)
					if e.To == b {
						found = true
					}
				} else if d == dist[p]+1 {
					parents[e.To] = append(parents[e.To], p)
				}
			}
		}
		frontier = next
	}
	if !found {
		return nil
	}
	// Enumerate shortest paths backward from b.
	var paths [][]ids.ID
	var walk func(node ids.ID, acc []ids.ID)
	walk = func(node ids.ID, acc []ids.ID) {
		if len(paths) >= q14PathCap {
			return
		}
		acc = append(acc, node)
		if node == a {
			path := make([]ids.ID, len(acc))
			for i := range acc {
				path[i] = acc[len(acc)-1-i]
			}
			paths = append(paths, path)
			return
		}
		for _, p := range parents[node] {
			walk(p, acc)
		}
	}
	walk(b, nil)

	rows := make([]Q14Row, 0, len(paths))
	for _, path := range paths {
		w := 0.0
		for i := 0; i+1 < len(path); i++ {
			w += interactionWeight(r, path[i], path[i+1])
		}
		rows = append(rows, Q14Row{Path: path, Weight: w})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Weight != rows[j].Weight {
			return rows[i].Weight > rows[j].Weight
		}
		return lessPath(rows[i].Path, rows[j].Path)
	})
	return rows
}

func lessPath(a, b []ids.ID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// interactionWeight sums the reply interaction between two persons: 1.0
// per comment by one replying to a post of the other, 0.5 per comment
// replying to a comment of the other.
func interactionWeight[R store.Reader](r R, x, y ids.ID) float64 {
	w := 0.0
	pair := func(from, to ids.ID) {
		for _, m := range messagesOf(r, from) {
			if m.To.Kind() != ids.KindComment {
				continue
			}
			parents := r.Out(m.To, store.EdgeReplyOf)
			if len(parents) == 0 {
				continue
			}
			parent := parents[0].To
			creators := r.Out(parent, store.EdgeHasCreator)
			if len(creators) == 0 || creators[0].To != to {
				continue
			}
			if parent.Kind() == ids.KindPost {
				w += 1.0
			} else {
				w += 0.5
			}
		}
	}
	pair(x, y)
	pair(y, x)
	return w
}
