// Package workload implements the SNB Interactive workload: the 14 complex
// read-only queries (Q1-Q14, Appendix of the paper), the 7 simple read-only
// queries, and the 8 transactional updates (U1-U8), all executed against
// the property-graph store.
//
// The implementations are graph-navigation programs over the store API (the
// Sparksee style of §5); Query 9 additionally has an explicit join-operator
// formulation used for the Figure 4 join-type ablation.
package workload

import (
	"ldbcsnb/internal/bitset"
	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/store"
)

// friendsOf returns the distinct direct friends of a person.
func friendsOf(tx *store.Txn, p ids.ID) []ids.ID {
	edges := tx.Out(p, store.EdgeKnows)
	out := make([]ids.ID, 0, len(edges))
	seen := make(map[ids.ID]bool, len(edges))
	for _, e := range edges {
		if e.To != p && !seen[e.To] {
			seen[e.To] = true
			out = append(out, e.To)
		}
	}
	return out
}

// friendsAndFoF returns the distinct persons within two knows-hops of p,
// excluding p itself. This set is the "2-hop environment" whose size
// distribution Figure 5(a) plots.
func friendsAndFoF(tx *store.Txn, p ids.ID) []ids.ID {
	seen := map[ids.ID]bool{p: true}
	var out []ids.ID
	for _, e := range tx.Out(p, store.EdgeKnows) {
		if !seen[e.To] {
			seen[e.To] = true
			out = append(out, e.To)
		}
	}
	direct := len(out)
	for i := 0; i < direct; i++ {
		for _, e := range tx.Out(out[i], store.EdgeKnows) {
			if !seen[e.To] {
				seen[e.To] = true
				out = append(out, e.To)
			}
		}
	}
	return out
}

// messagesOf returns the messages created by a person as (id, creationDate)
// pairs, exploiting the hasCreator reverse adjacency whose stamps carry the
// message creation dates.
func messagesOf(tx *store.Txn, p ids.ID) []store.Edge {
	return tx.In(p, store.EdgeHasCreator)
}

// isFriend reports whether a and b are directly connected.
func isFriend(tx *store.Txn, a, b ids.ID) bool {
	for _, e := range tx.Out(a, store.EdgeKnows) {
		if e.To == b {
			return true
		}
	}
	return false
}

// Scratch is the reusable per-executor state of the view-based query path:
// a dense visited bitset keyed by the view's compact node ordinals plus
// traversal buffers. One Scratch serves one goroutine; reusing it across
// queries keeps the hot BFS loops allocation-free once the buffers have
// warmed up to the working-set size.
type Scratch struct {
	seen bitset.Set
	env  []ids.ID // traversal output buffer, reused between queries
}

// NewScratch returns an empty scratch; buffers grow on first use.
func NewScratch() *Scratch { return &Scratch{} }

// reset prepares the scratch for one query over v.
func (sc *Scratch) reset(v *store.SnapshotView) {
	sc.seen.Grow(v.NumNodes())
	sc.seen.Reset()
	sc.env = sc.env[:0]
}

// markSeen marks a node's ordinal, reporting whether it was new. Nodes
// outside the view (never the case for edge endpoints, which the store
// materialises) count as already seen.
func (sc *Scratch) markSeen(v *store.SnapshotView, id ids.ID) bool {
	o, ok := v.Ord(id)
	if !ok {
		return false
	}
	return sc.seen.TrySet(o)
}

// friendsOfView is friendsOf on the frozen view: distinct direct friends in
// edge insertion order, excluding p. The result aliases sc.env and is valid
// until the next query on sc.
func friendsOfView(v *store.SnapshotView, sc *Scratch, p ids.ID) []ids.ID {
	sc.reset(v)
	sc.markSeen(v, p)
	for _, e := range v.Out(p, store.EdgeKnows) {
		if sc.markSeen(v, e.To) {
			sc.env = append(sc.env, e.To)
		}
	}
	return sc.env
}

// friendsAndFoFView is friendsAndFoF on the frozen view: the distinct 2-hop
// knows environment of p (excluding p), in the same order as the Txn path.
// The result aliases sc.env and is valid until the next query on sc.
func friendsAndFoFView(v *store.SnapshotView, sc *Scratch, p ids.ID) []ids.ID {
	sc.reset(v)
	sc.markSeen(v, p)
	for _, e := range v.Out(p, store.EdgeKnows) {
		if sc.markSeen(v, e.To) {
			sc.env = append(sc.env, e.To)
		}
	}
	direct := len(sc.env)
	for i := 0; i < direct; i++ {
		for _, e := range v.Out(sc.env[i], store.EdgeKnows) {
			if sc.markSeen(v, e.To) {
				sc.env = append(sc.env, e.To)
			}
		}
	}
	return sc.env
}

// TwoHopEnvView exposes the view-path 2-hop expansion (friendsAndFoFView)
// for benchmarks and external callers: the distinct persons within two
// knows-hops of p, excluding p. The result aliases sc's buffers and is
// valid until the next query on sc; iterating it allocates nothing once
// the scratch is warm.
func TwoHopEnvView(v *store.SnapshotView, sc *Scratch, p ids.ID) []ids.ID {
	return friendsAndFoFView(v, sc, p)
}

// messagesOfView returns the (message, creationDate) adjacency of a
// person's hasCreator reverse edges — a zero-copy slab subslice.
func messagesOfView(v *store.SnapshotView, p ids.ID) []store.Edge {
	return v.In(p, store.EdgeHasCreator)
}

// isFriendView reports whether a and b are directly connected in the view.
func isFriendView(v *store.SnapshotView, a, b ids.ID) bool {
	for _, e := range v.Out(a, store.EdgeKnows) {
		if e.To == b {
			return true
		}
	}
	return false
}
