// Package workload implements the SNB Interactive workload: the 14 complex
// read-only queries (Q1-Q14, Appendix of the paper), the 7 simple read-only
// queries (S1-S7, the profile/post views of §4), and the 8 transactional
// updates (U1-U8), all executed against the property-graph store.
//
// # The unified Reader contract
//
// Every read-only query has exactly one implementation, generic over
// store.Reader:
//
//	func Q9[R store.Reader](r R, sc *Scratch, start ids.ID, maxDate int64) []MessageRow
//
// The same code therefore serves both read paths. Instantiated with
// *store.Txn it is the transactional formulation (MVCC filtering, map-backed
// visited sets); instantiated with *store.SnapshotView it is the Interactive
// hot path (lock-free CSR subslices, dense ordinal bitsets, no allocation in
// the adjacency loops). Results are identical between the two instantiations
// at the same snapshot timestamp — every result ordering tie-breaks on a
// unique ID, so selection and order are deterministic; the equivalence
// property tests (view_test.go) pin this for all queries and the short-read
// chain.
//
// The queries are graph-navigation programs (the Sparksee style of §5);
// Query 9 additionally has an explicit join-operator formulation (Q9Join)
// used for the Figure 4 join-type ablation.
//
// # Scratch and aliasing rules
//
// A Scratch carries the reusable traversal state of one executor goroutine:
// a pool of visited sets and two ID buffers. Queries bind it to their reader
// on entry, which resets all scratch state. The aliasing rules:
//
//   - One Scratch serves one goroutine; never share it.
//   - Slices returned by helpers that traverse (TwoHopEnv) alias the
//     scratch's buffers and are valid only until the next query on the same
//     Scratch. Copy them to keep them.
//   - Query results (Q*Row slices) never alias the scratch — they are safe
//     to retain.
//   - On the view path, visited sets are keyed by the view's node ordinals,
//     so a Scratch must not be shared between queries running against
//     different views concurrently (sequential reuse across views is fine
//     and is the intended pattern).
package workload

import (
	"ldbcsnb/internal/bitset"
	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/store"
)

// Scratch is the reusable per-executor traversal state of the unified query
// path: a pool of visited sets plus ID buffers, recycled across queries so
// the hot BFS loops stay allocation-free on the view path once the buffers
// have warmed up to the working-set size. See the package documentation for
// the aliasing rules.
//
// Scratch is era-aware: on the view path its visited-set pool is keyed by
// the view's node ordinals, which the store keeps stable across delta
// refreshes within one era (store.SnapshotView.Era). Rebinding to a
// refreshed view of the same era therefore reuses the warm bitsets — no
// reallocation, capacity only grows. Rebinding across an era bump (a full
// recompaction reassigned every ordinal) additionally hard-resets the
// whole pool, including sets the next query never re-binds. Per-query
// correctness does not depend on this — every set is cleared when handed
// out — the era reset enforces the pool-wide contract that no
// ordinal-keyed state survives a recompaction, so future cross-query
// caches keyed by ordinals inherit a safe boundary.
type Scratch struct {
	v    *store.SnapshotView // non-nil while bound to a frozen view
	era  uint64              // era of the last bound view (0 = none yet)
	sets []*seenSet          // visited-set pool, recycled across queries
	used int                 // sets handed out since the last begin
	env  []ids.ID            // primary traversal buffer (friend environments, BFS layers)
	aux  []ids.ID            // secondary buffer (subtree queues, forum lists)
}

// NewScratch returns an empty scratch; buffers grow on first use.
func NewScratch() *Scratch { return &Scratch{} }

// Era returns the era of the last frozen view the scratch was bound to
// (0 before the first view-path query). Ordinal-keyed state derived from
// the scratch is invalid once the current view's era differs.
func (sc *Scratch) Era() uint64 { return sc.era }

// begin binds the scratch to one query execution over r, resetting all
// scratch state. Visited sets handed out afterwards are keyed by view
// ordinals when r is a frozen view and by node-ID hash sets otherwise.
// Crossing a view era invalidates every pooled set, handed out this query
// or not.
func (sc *Scratch) begin(r store.Reader) {
	v := r.Frozen()
	if v != nil && v.Era() != sc.era {
		for _, s := range sc.sets {
			s.invalidate()
		}
		sc.era = v.Era()
	}
	sc.v = v
	sc.used = 0
	sc.env = sc.env[:0]
	sc.aux = sc.aux[:0]
}

// Begin binds the scratch to one query execution over r, resetting all
// pooled state. It is the exported entry for traversal code outside this
// package (internal/bi's graph predicates run over the same scratch
// machinery); the Interactive queries call the unexported begin directly.
func (sc *Scratch) Begin(r store.Reader) { sc.begin(r) }

// Seen is an exported handle on one pooled visited set: a dense ordinal
// bitset when the owning scratch is bound to a frozen view, a node-ID hash
// set on the MVCC path. A Seen is valid until the next Begin on its
// scratch, and follows the scratch's aliasing rules (one goroutine).
type Seen struct{ s *seenSet }

// Seen draws a cleared visited set from the scratch's pool.
func (sc *Scratch) Seen() Seen { return Seen{sc.newSeen()} }

// TryMark marks a node, reporting whether it was unseen. On the view path,
// nodes outside the view count as already seen (never the case for edge
// endpoints, which the store materialises).
func (s Seen) TryMark(id ids.ID) bool { return s.s.tryMark(id) }

// Has reports whether a node is marked.
func (s Seen) Has(id ids.ID) bool { return s.s.has(id) }

// newSeen returns a cleared visited set drawn from the scratch's pool. The
// set is valid until the next begin.
func (sc *Scratch) newSeen() *seenSet {
	if sc.used == len(sc.sets) {
		sc.sets = append(sc.sets, &seenSet{})
	}
	s := sc.sets[sc.used]
	sc.used++
	s.bind(sc.v)
	return s
}

// seenSet is one visited set: a dense ordinal bitset when bound to a frozen
// view, a node-ID hash set otherwise. The dual representation is what lets
// one generic query implementation keep the view path's zero-allocation
// adjacency iteration while remaining correct on the MVCC path.
type seenSet struct {
	v    *store.SnapshotView
	bits bitset.Set
	m    map[ids.ID]struct{}
}

// invalidate discards the set's ordinal-keyed state (view binding and
// marked bits) while keeping the allocated capacity. Called on era bumps:
// after a recompaction the same ordinal names a different node, so
// surviving bits would be silently wrong rather than merely stale. This is
// defence in depth for sets the next queries never re-bind — bind clears
// each set it hands out regardless.
func (s *seenSet) invalidate() {
	s.v = nil
	s.bits.Reset()
}

// bind prepares the set for one traversal over v (nil = MVCC path).
func (s *seenSet) bind(v *store.SnapshotView) {
	s.v = v
	if v != nil {
		s.bits.Grow(v.NumNodes())
		s.bits.Reset()
		return
	}
	if s.m == nil {
		s.m = make(map[ids.ID]struct{})
		return
	}
	clear(s.m)
}

// tryMark marks a node, reporting whether it was unseen. On the view path,
// nodes outside the view count as already seen (never the case for edge
// endpoints, which the store materialises).
func (s *seenSet) tryMark(id ids.ID) bool {
	if s.v != nil {
		o, ok := s.v.Ord(id)
		if !ok {
			return false
		}
		return s.bits.TrySet(o)
	}
	if _, ok := s.m[id]; ok {
		return false
	}
	s.m[id] = struct{}{}
	return true
}

// has reports whether a node is marked.
func (s *seenSet) has(id ids.ID) bool {
	if s.v != nil {
		o, ok := s.v.Ord(id)
		return ok && s.bits.Has(o)
	}
	_, ok := s.m[id]
	return ok
}

// friendsOf fills sc.env with the distinct direct friends of p (excluding
// p), in edge insertion order. The result aliases sc.env.
func friendsOf[R store.Reader](r R, sc *Scratch, p ids.ID) []ids.ID {
	seen := sc.newSeen()
	seen.tryMark(p)
	sc.env = sc.env[:0]
	for _, e := range r.Out(p, store.EdgeKnows) {
		if seen.tryMark(e.To) {
			sc.env = append(sc.env, e.To)
		}
	}
	return sc.env
}

// friendsAndFoF fills sc.env with the distinct persons within two
// knows-hops of p, excluding p itself — the "2-hop environment" whose size
// distribution Figure 5(a) plots. It returns the environment (aliasing
// sc.env) together with its visited set (which additionally contains p) for
// queries that need membership tests afterwards.
func friendsAndFoF[R store.Reader](r R, sc *Scratch, p ids.ID) ([]ids.ID, *seenSet) {
	seen := sc.newSeen()
	seen.tryMark(p)
	sc.env = sc.env[:0]
	for _, e := range r.Out(p, store.EdgeKnows) {
		if seen.tryMark(e.To) {
			sc.env = append(sc.env, e.To)
		}
	}
	direct := len(sc.env)
	for i := 0; i < direct; i++ {
		for _, e := range r.Out(sc.env[i], store.EdgeKnows) {
			if seen.tryMark(e.To) {
				sc.env = append(sc.env, e.To)
			}
		}
	}
	return sc.env, seen
}

// TwoHopEnv exposes the 2-hop expansion for benchmarks and external
// callers: the distinct persons within two knows-hops of p, excluding p.
// The result aliases sc's buffers and is valid until the next query on sc;
// on the view path, iterating it allocates nothing once the scratch is
// warm.
func TwoHopEnv[R store.Reader](r R, sc *Scratch, p ids.ID) []ids.ID {
	sc.begin(r)
	env, _ := friendsAndFoF(r, sc, p)
	return env
}

// messagesOf returns the messages created by a person as (id, creationDate)
// pairs, exploiting the hasCreator reverse adjacency whose stamps carry the
// message creation dates. On the view path this is a zero-copy slab
// subslice.
func messagesOf[R store.Reader](r R, p ids.ID) []store.Edge {
	return r.In(p, store.EdgeHasCreator)
}

// isFriend reports whether a and b are directly connected.
func isFriend[R store.Reader](r R, a, b ids.ID) bool {
	for _, e := range r.Out(a, store.EdgeKnows) {
		if e.To == b {
			return true
		}
	}
	return false
}
