// Package workload implements the SNB Interactive workload: the 14 complex
// read-only queries (Q1-Q14, Appendix of the paper), the 7 simple read-only
// queries, and the 8 transactional updates (U1-U8), all executed against
// the property-graph store.
//
// The implementations are graph-navigation programs over the store API (the
// Sparksee style of §5); Query 9 additionally has an explicit join-operator
// formulation used for the Figure 4 join-type ablation.
package workload

import (
	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/store"
)

// friendsOf returns the distinct direct friends of a person.
func friendsOf(tx *store.Txn, p ids.ID) []ids.ID {
	edges := tx.Out(p, store.EdgeKnows)
	out := make([]ids.ID, 0, len(edges))
	seen := make(map[ids.ID]bool, len(edges))
	for _, e := range edges {
		if e.To != p && !seen[e.To] {
			seen[e.To] = true
			out = append(out, e.To)
		}
	}
	return out
}

// friendsAndFoF returns the distinct persons within two knows-hops of p,
// excluding p itself. This set is the "2-hop environment" whose size
// distribution Figure 5(a) plots.
func friendsAndFoF(tx *store.Txn, p ids.ID) []ids.ID {
	seen := map[ids.ID]bool{p: true}
	var out []ids.ID
	for _, e := range tx.Out(p, store.EdgeKnows) {
		if !seen[e.To] {
			seen[e.To] = true
			out = append(out, e.To)
		}
	}
	direct := len(out)
	for i := 0; i < direct; i++ {
		for _, e := range tx.Out(out[i], store.EdgeKnows) {
			if !seen[e.To] {
				seen[e.To] = true
				out = append(out, e.To)
			}
		}
	}
	return out
}

// messagesOf returns the messages created by a person as (id, creationDate)
// pairs, exploiting the hasCreator reverse adjacency whose stamps carry the
// message creation dates.
func messagesOf(tx *store.Txn, p ids.ID) []store.Edge {
	return tx.In(p, store.EdgeHasCreator)
}

// isFriend reports whether a and b are directly connected.
func isFriend(tx *store.Txn, a, b ids.ID) bool {
	for _, e := range tx.Out(a, store.EdgeKnows) {
		if e.To == b {
			return true
		}
	}
	return false
}
