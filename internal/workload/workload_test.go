package workload

import (
	"sort"
	"sync"
	"testing"

	"ldbcsnb/internal/datagen"
	"ldbcsnb/internal/dict"
	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/schema"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/xrand"
)

// The workload tests run against a generated SF-tiny dataset loaded into a
// fresh store, with the full dataset kept for reference-model checks.
var (
	setupOnce sync.Once
	testStore *store.Store
	testData  *schema.Dataset
)

func setup(t *testing.T) (*store.Store, *schema.Dataset) {
	t.Helper()
	setupOnce.Do(func() {
		out := datagen.Generate(datagen.Config{Seed: 99, Persons: 250, Workers: 2})
		st := store.New()
		schema.RegisterIndexes(st)
		if err := schema.LoadDimensions(st); err != nil {
			panic(err)
		}
		if err := schema.Load(st, out.Data); err != nil {
			panic(err)
		}
		testStore, testData = st, out.Data
	})
	return testStore, testData
}

// pickPersonWithFriends returns a person with at least minFriends friends.
func pickPersonWithFriends(t *testing.T, d *schema.Dataset, minFriends int) ids.ID {
	t.Helper()
	deg := map[ids.ID]int{}
	for _, k := range d.Knows {
		deg[k.A]++
		deg[k.B]++
	}
	for i := range d.Persons {
		if deg[d.Persons[i].ID] >= minFriends {
			return d.Persons[i].ID
		}
	}
	t.Fatalf("no person with %d friends", minFriends)
	return 0
}

// refFriends computes the reference friend set from the raw dataset.
func refFriends(d *schema.Dataset, p ids.ID) map[ids.ID]bool {
	out := map[ids.ID]bool{}
	for _, k := range d.Knows {
		if k.A == p {
			out[k.B] = true
		}
		if k.B == p {
			out[k.A] = true
		}
	}
	return out
}

func TestFriendsHelpersMatchReference(t *testing.T) {
	st, d := setup(t)
	p := pickPersonWithFriends(t, d, 3)
	want := refFriends(d, p)
	st.View(func(tx *store.Txn) {
		sc := NewScratch()
		sc.begin(tx)
		got := friendsOf(tx, sc, p)
		if len(got) != len(want) {
			t.Fatalf("friendsOf: got %d want %d", len(got), len(want))
		}
		for _, f := range got {
			if !want[f] {
				t.Fatalf("unexpected friend %v", f)
			}
		}
		// 2-hop environment reference.
		ref := map[ids.ID]bool{}
		for f := range want {
			ref[f] = true
			for ff := range refFriends(d, f) {
				if ff != p {
					ref[ff] = true
				}
			}
		}
		env, _ := friendsAndFoF(tx, sc, p)
		if len(env) != len(ref) {
			t.Fatalf("friendsAndFoF: got %d want %d", len(env), len(ref))
		}
	})
}

func TestQ1FindsNamesakesInOrder(t *testing.T) {
	st, d := setup(t)
	p := pickPersonWithFriends(t, d, 3)
	// Use the most common first name in the dataset to guarantee hits.
	counts := map[string]int{}
	for i := range d.Persons {
		counts[d.Persons[i].FirstName]++
	}
	name, best := "", 0
	for n, c := range counts {
		if c > best {
			name, best = n, c
		}
	}
	st.View(func(tx *store.Txn) {
		sc := NewScratch()
		rows := Q1(tx, sc, p, name)
		if len(rows) == 0 {
			t.Skip("no namesakes within 3 hops of test person")
		}
		for i, r := range rows {
			if tx.Prop(r.Person, store.PropFirstName).Str() != name {
				t.Fatal("Q1 returned wrong name")
			}
			if r.Distance < 1 || r.Distance > 3 {
				t.Fatalf("distance %d out of range", r.Distance)
			}
			if i > 0 {
				prev := rows[i-1]
				if r.Distance < prev.Distance {
					t.Fatal("Q1 not sorted by distance")
				}
				if r.Distance == prev.Distance && r.LastName < prev.LastName {
					t.Fatal("Q1 not sorted by last name within distance")
				}
			}
		}
		if len(rows) > 20 {
			t.Fatal("Q1 exceeds limit")
		}
	})
}

func TestQ2MatchesReferenceModel(t *testing.T) {
	st, d := setup(t)
	p := pickPersonWithFriends(t, d, 3)
	maxDate := datagen.UpdateCut
	// Reference: all messages of direct friends before maxDate.
	friends := refFriends(d, p)
	type ref struct {
		id   ids.ID
		date int64
	}
	var want []ref
	for i := range d.Posts {
		if friends[d.Posts[i].Creator] && d.Posts[i].CreationDate <= maxDate {
			want = append(want, ref{d.Posts[i].ID, d.Posts[i].CreationDate})
		}
	}
	for i := range d.Comments {
		if friends[d.Comments[i].Creator] && d.Comments[i].CreationDate <= maxDate {
			want = append(want, ref{d.Comments[i].ID, d.Comments[i].CreationDate})
		}
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i].date != want[j].date {
			return want[i].date > want[j].date
		}
		return want[i].id < want[j].id
	})
	if len(want) > 20 {
		want = want[:20]
	}
	st.View(func(tx *store.Txn) {
		got := Q2(tx, NewScratch(), p, maxDate)
		if len(got) != len(want) {
			t.Fatalf("Q2 size: got %d want %d", len(got), len(want))
		}
		for i := range got {
			if got[i].Message != want[i].id || got[i].CreationDate != want[i].date {
				t.Fatalf("Q2 row %d: got %v/%d want %v/%d",
					i, got[i].Message, got[i].CreationDate, want[i].id, want[i].date)
			}
		}
	})
}

func TestQ9SupersetOfQ2AndOrdered(t *testing.T) {
	st, d := setup(t)
	p := pickPersonWithFriends(t, d, 3)
	maxDate := datagen.UpdateCut
	st.View(func(tx *store.Txn) {
		sc := NewScratch()
		q9 := Q9(tx, sc, p, maxDate)
		if len(q9) == 0 {
			t.Skip("no messages in 2-hop environment")
		}
		for i := 1; i < len(q9); i++ {
			if q9[i].CreationDate > q9[i-1].CreationDate {
				t.Fatal("Q9 not sorted desc by date")
			}
		}
		// The 2-hop newest message is at least as new as the 1-hop newest.
		q2 := Q2(tx, sc, p, maxDate)
		if len(q2) > 0 && q9[0].CreationDate < q2[0].CreationDate {
			t.Fatal("Q9 top should dominate Q2 top")
		}
	})
}

func TestQ9JoinPlansAgree(t *testing.T) {
	st, d := setup(t)
	p := pickPersonWithFriends(t, d, 3)
	maxDate := datagen.UpdateCut
	st.View(func(tx *store.Txn) {
		sc := NewScratch()
		want := Q9(tx, sc, p, maxDate)
		for _, plan := range []Q9Plan{
			{JoinINL, JoinINL},
			{JoinHash, JoinINL},
			{JoinINL, JoinHash},
			{JoinHash, JoinHash},
		} {
			got := Q9Join(tx, sc, p, maxDate, plan)
			if len(got) != len(want) {
				t.Fatalf("plan %+v: size %d want %d", plan, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("plan %+v row %d: %+v want %+v", plan, i, got[i], want[i])
				}
			}
		}
	})
}

func TestQ3TravelersExcludeLocals(t *testing.T) {
	st, d := setup(t)
	p := pickPersonWithFriends(t, d, 3)
	st.View(func(tx *store.Txn) {
		// Use the two most common countries as X and Y to maximise hits.
		rows := Q3(tx, NewScratch(), p, 0, 1, datagen.SimStart, datagen.SimEnd-datagen.SimStart)
		for _, r := range rows {
			home := int(tx.Prop(r.Person, store.PropCountry).Int())
			if home == 0 || home == 1 {
				t.Fatal("Q3 returned a local person")
			}
			if r.CountX == 0 || r.CountY == 0 {
				t.Fatal("Q3 returned person without both countries")
			}
		}
		// Sorted by total desc.
		for i := 1; i < len(rows); i++ {
			if rows[i].CountX+rows[i].CountY > rows[i-1].CountX+rows[i-1].CountY {
				t.Fatal("Q3 not sorted")
			}
		}
	})
}

func TestQ4NewTopicsWindow(t *testing.T) {
	st, d := setup(t)
	p := pickPersonWithFriends(t, d, 3)
	mid := datagen.SimStart + (datagen.SimEnd-datagen.SimStart)/2
	st.View(func(tx *store.Txn) {
		rows := Q4(tx, NewScratch(), p, mid, 90*24*3600*1000)
		if len(rows) > 10 {
			t.Fatal("Q4 exceeds limit")
		}
		for i := 1; i < len(rows); i++ {
			if rows[i].Count > rows[i-1].Count {
				t.Fatal("Q4 not sorted by count desc")
			}
		}
		// "New" check: no friend post before the window carries the tag.
		friends := refFriends(d, p)
		for _, row := range rows {
			for i := range d.Posts {
				post := &d.Posts[i]
				if !friends[post.Creator] || post.CreationDate >= mid {
					continue
				}
				for _, tg := range post.Tags {
					if schema.TagNodeID(tg) == row.Tag {
						t.Fatalf("Q4 returned old tag %s", row.Name)
					}
				}
			}
		}
	})
}

func TestQ5NewGroups(t *testing.T) {
	st, d := setup(t)
	p := pickPersonWithFriends(t, d, 3)
	st.View(func(tx *store.Txn) {
		sc := NewScratch()
		rows := Q5(tx, sc, p, datagen.SimStart) // all joins qualify
		if len(rows) == 0 {
			t.Skip("no forums joined by 2-hop environment")
		}
		for i := 1; i < len(rows); i++ {
			if rows[i].Count > rows[i-1].Count {
				t.Fatal("Q5 not sorted")
			}
		}
		// A forum joined only before minDate must not appear.
		late := Q5(tx, sc, p, datagen.SimEnd)
		if len(late) != 0 {
			t.Fatal("Q5 with future minDate should be empty")
		}
	})
}

func TestQ6CoOccurrence(t *testing.T) {
	st, d := setup(t)
	p := pickPersonWithFriends(t, d, 3)
	st.View(func(tx *store.Txn) {
		// Find a tag that occurs with co-tags among the environment's posts.
		sc := NewScratch()
		sc.begin(tx)
		env, _ := friendsAndFoF(tx, sc, p)
		var tag ids.ID
		for _, q := range env {
			for _, m := range messagesOf(tx, q) {
				if m.To.Kind() != ids.KindPost {
					continue
				}
				if tags := tx.Out(m.To, store.EdgeHasTag); len(tags) >= 2 {
					tag = tags[0].To
					break
				}
			}
			if tag != 0 {
				break
			}
		}
		if tag == 0 {
			t.Skip("no multi-tag posts in environment")
		}
		rows := Q6(tx, sc, p, tag)
		for _, r := range rows {
			if r.Tag == tag {
				t.Fatal("Q6 must exclude the query tag")
			}
			if r.Count <= 0 {
				t.Fatal("Q6 zero count row")
			}
		}
	})
}

func TestQ7RecentLikes(t *testing.T) {
	st, d := setup(t)
	// Find a person whose messages have likes.
	liked := map[ids.ID]bool{}
	for _, l := range d.Likes {
		liked[l.Message] = true
	}
	creator := map[ids.ID]ids.ID{}
	for i := range d.Posts {
		creator[d.Posts[i].ID] = d.Posts[i].Creator
	}
	for i := range d.Comments {
		creator[d.Comments[i].ID] = d.Comments[i].Creator
	}
	var p ids.ID
	for m := range liked {
		if c, ok := creator[m]; ok {
			p = c
			break
		}
	}
	if p == 0 {
		t.Skip("no liked messages")
	}
	st.View(func(tx *store.Txn) {
		rows := Q7(tx, NewScratch(), p)
		if len(rows) == 0 {
			t.Fatal("expected likes")
		}
		seen := map[ids.ID]bool{}
		for i, r := range rows {
			if r.LatencyMillis < 0 {
				t.Fatal("negative like latency")
			}
			if seen[r.Liker] {
				t.Fatal("Q7 must report one row per liker")
			}
			seen[r.Liker] = true
			if i > 0 && r.LikeDate > rows[i-1].LikeDate {
				t.Fatal("Q7 not sorted desc")
			}
		}
	})
}

func TestQ8RecentReplies(t *testing.T) {
	st, d := setup(t)
	// A person with replied-to posts.
	replied := map[ids.ID]bool{}
	for i := range d.Comments {
		replied[d.Comments[i].ReplyOf] = true
	}
	var p ids.ID
	for i := range d.Posts {
		if replied[d.Posts[i].ID] {
			p = d.Posts[i].Creator
			break
		}
	}
	if p == 0 {
		t.Skip("no replies in dataset")
	}
	st.View(func(tx *store.Txn) {
		rows := Q8(tx, NewScratch(), p)
		if len(rows) == 0 {
			t.Fatal("expected replies")
		}
		for i := 1; i < len(rows); i++ {
			if rows[i].CreationDate > rows[i-1].CreationDate {
				t.Fatal("Q8 not sorted desc")
			}
		}
		for _, r := range rows {
			if r.Comment.Kind() != ids.KindComment {
				t.Fatal("Q8 returned non-comment")
			}
		}
	})
}

func TestQ10Recommendation(t *testing.T) {
	st, d := setup(t)
	p := pickPersonWithFriends(t, d, 5)
	st.View(func(tx *store.Txn) {
		direct := map[ids.ID]bool{p: true}
		sc := NewScratch()
		sc.begin(tx)
		for _, f := range append([]ids.ID(nil), friendsOf(tx, sc, p)...) {
			direct[f] = true
		}
		found := false
		for sign := 0; sign < 12; sign++ {
			rows := Q10(tx, sc, p, sign)
			for i, r := range rows {
				found = true
				if direct[r.Person] {
					t.Fatal("Q10 recommended a direct friend or self")
				}
				if ZodiacSign(tx.Prop(r.Person, store.PropBirthday).Int()) != sign {
					t.Fatal("Q10 sign filter broken")
				}
				if i > 0 && r.Score > rows[i-1].Score {
					t.Fatal("Q10 not sorted by score desc")
				}
			}
		}
		if !found {
			t.Skip("no FoF candidates with any sign")
		}
	})
}

func TestQ11JobReferral(t *testing.T) {
	st, d := setup(t)
	p := pickPersonWithFriends(t, d, 5)
	st.View(func(tx *store.Txn) {
		sc := NewScratch()
		found := false
		for country := range dict.Countries {
			rows := Q11(tx, sc, p, country, 2013)
			for i, r := range rows {
				found = true
				if r.WorkFrom >= 2013 {
					t.Fatal("Q11 workFrom filter broken")
				}
				if i > 0 && r.WorkFrom < rows[i-1].WorkFrom {
					t.Fatal("Q11 not sorted asc by workFrom")
				}
			}
			if found {
				break
			}
		}
		if !found {
			t.Skip("no working FoF found")
		}
	})
}

func TestQ12ExpertSearch(t *testing.T) {
	st, d := setup(t)
	p := pickPersonWithFriends(t, d, 5)
	st.View(func(tx *store.Txn) {
		// Thing (class 0) covers every tag, so any reply to a tagged post
		// counts.
		root := ids.DimensionID(ids.KindTagClass, 0)
		sc := NewScratch()
		rows := Q12(tx, sc, p, root)
		for i := 1; i < len(rows); i++ {
			if rows[i].Replies > rows[i-1].Replies {
				t.Fatal("Q12 not sorted")
			}
		}
		// A leaf class must never yield more replies than the root.
		leaf := ids.DimensionID(ids.KindTagClass, 3)
		leafRows := Q12(tx, sc, p, leaf)
		sum := func(rs []Q12Row) int {
			n := 0
			for _, r := range rs {
				n += r.Replies
			}
			return n
		}
		if sum(leafRows) > sum(rows) {
			t.Fatal("leaf class exceeded root class")
		}
	})
}

func TestQ13AgainstReferenceBFS(t *testing.T) {
	st, d := setup(t)
	// Reference BFS on the raw dataset.
	adjacency := map[ids.ID][]ids.ID{}
	for _, k := range d.Knows {
		adjacency[k.A] = append(adjacency[k.A], k.B)
		adjacency[k.B] = append(adjacency[k.B], k.A)
	}
	refDist := func(a, b ids.ID) int {
		if a == b {
			return 0
		}
		dist := map[ids.ID]int{a: 0}
		queue := []ids.ID{a}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range adjacency[cur] {
				if _, ok := dist[nb]; !ok {
					dist[nb] = dist[cur] + 1
					if nb == b {
						return dist[nb]
					}
					queue = append(queue, nb)
				}
			}
		}
		return -1
	}
	r := xrand.New(5)
	st.View(func(tx *store.Txn) {
		sc := NewScratch()
		for i := 0; i < 30; i++ {
			a := d.Persons[r.Intn(len(d.Persons))].ID
			b := d.Persons[r.Intn(len(d.Persons))].ID
			want := refDist(a, b)
			if got := Q13(tx, sc, a, b); got != want {
				t.Fatalf("Q13(%v,%v) = %d, want %d", a, b, got, want)
			}
		}
	})
}

func TestQ14PathsValid(t *testing.T) {
	st, d := setup(t)
	r := xrand.New(6)
	st.View(func(tx *store.Txn) {
		sc := NewScratch()
		checked := 0
		for i := 0; i < 60 && checked < 5; i++ {
			a := d.Persons[r.Intn(len(d.Persons))].ID
			b := d.Persons[r.Intn(len(d.Persons))].ID
			want := Q13(tx, sc, a, b)
			rows := Q14(tx, sc, a, b)
			if want < 0 {
				if len(rows) != 0 {
					t.Fatal("Q14 found path where none exists")
				}
				continue
			}
			if len(rows) == 0 {
				t.Fatal("Q14 found no path where Q13 did")
			}
			checked++
			for j, row := range rows {
				if len(row.Path) != want+1 {
					t.Fatalf("Q14 path length %d, want %d", len(row.Path)-1, want)
				}
				if row.Path[0] != a || row.Path[len(row.Path)-1] != b {
					t.Fatal("Q14 path endpoints wrong")
				}
				// Consecutive nodes must be friends.
				for k := 0; k+1 < len(row.Path); k++ {
					if !isFriend(tx, row.Path[k], row.Path[k+1]) {
						t.Fatal("Q14 path uses non-edge")
					}
				}
				if j > 0 && row.Weight > rows[j-1].Weight {
					t.Fatal("Q14 not sorted by weight desc")
				}
			}
		}
		if checked == 0 {
			t.Skip("no connected pairs sampled")
		}
	})
}

func TestShortReads(t *testing.T) {
	st, d := setup(t)
	p := pickPersonWithFriends(t, d, 2)
	var postWithReply ids.ID
	replied := map[ids.ID]bool{}
	for i := range d.Comments {
		replied[d.Comments[i].ReplyOf] = true
	}
	for i := range d.Posts {
		if replied[d.Posts[i].ID] {
			postWithReply = d.Posts[i].ID
			break
		}
	}
	st.View(func(tx *store.Txn) {
		if res, ok := S1(tx, p); !ok || res.FirstName == "" {
			t.Fatal("S1 failed")
		}
		if _, ok := S1(tx, ids.Compose(ids.KindPerson, 1<<39, 0)); ok {
			t.Fatal("S1 on missing person")
		}
		s2 := S2(tx, p)
		if len(s2) > 10 {
			t.Fatal("S2 limit")
		}
		for i := 1; i < len(s2); i++ {
			if s2[i].CreationDate > s2[i-1].CreationDate {
				t.Fatal("S2 order")
			}
		}
		s3 := S3(tx, p)
		if len(s3) == 0 {
			t.Fatal("S3 empty for person with friends")
		}
		if postWithReply != 0 {
			if res, ok := S4(tx, postWithReply); !ok || res.CreationDate == 0 {
				t.Fatal("S4 failed")
			}
			if res, ok := S5(tx, postWithReply); !ok || res.Creator == 0 {
				t.Fatal("S5 failed")
			}
			if res, ok := S6(tx, postWithReply); !ok || res.Forum == 0 {
				t.Fatal("S6 failed")
			}
			s7 := S7(tx, postWithReply)
			if len(s7) == 0 {
				t.Fatal("S7 empty for replied post")
			}
			// S6 on a comment should resolve to the same forum as its root.
			comment := s7[0].Comment
			cRes, ok := S6(tx, comment)
			if !ok {
				t.Fatal("S6 on comment failed")
			}
			pRes, _ := S6(tx, postWithReply)
			if cRes.Forum != pRes.Forum {
				t.Fatal("S6 comment forum mismatch")
			}
		}
	})
}

func TestShortReadChainTerminates(t *testing.T) {
	st, d := setup(t)
	p := pickPersonWithFriends(t, d, 2)
	r := xrand.New(77, xrand.PurposeShortRead)
	st.View(func(tx *store.Txn) {
		total := 0
		for i := 0; i < 50; i++ {
			stats := RunShortReadChain(tx, DefaultShortReadMix, r, []ids.ID{p}, nil, nil)
			for _, c := range stats {
				total += c
			}
		}
		if total == 0 {
			t.Fatal("chains never executed any short read")
		}
		// Expected chain length with P=0.9, Δ=0.15 is well under 7.
		if total > 50*12 {
			t.Fatalf("chains too long: %d reads over 50 chains", total)
		}
	})
}

func TestApplyUpdates(t *testing.T) {
	_, d := setup(t)
	// Fresh store loaded with bulk part; replay all updates.
	bulk, updates := datagen.Split(d, datagen.UpdateCut)
	st := store.New()
	schema.RegisterIndexes(st)
	if err := schema.LoadDimensions(st); err != nil {
		t.Fatal(err)
	}
	if err := schema.Load(st, bulk); err != nil {
		t.Fatal(err)
	}
	if len(updates) == 0 {
		t.Skip("no updates at this scale")
	}
	counts := map[schema.UpdateType]int{}
	for i := range updates {
		if err := ApplyUpdate(st, &updates[i]); err != nil {
			t.Fatalf("update %d (%v): %v", i, updates[i].Type, err)
		}
		counts[updates[i].Type]++
	}
	// After replay the store must contain the full dataset cardinalities.
	st.View(func(tx *store.Txn) {
		if got := len(tx.NodesOfKind(ids.KindPerson)); got != len(d.Persons) {
			t.Fatalf("persons after replay: %d want %d", got, len(d.Persons))
		}
		if got := len(tx.NodesOfKind(ids.KindPost)); got != len(d.Posts) {
			t.Fatalf("posts after replay: %d want %d", got, len(d.Posts))
		}
		if got := len(tx.NodesOfKind(ids.KindComment)); got != len(d.Comments) {
			t.Fatalf("comments after replay: %d want %d", got, len(d.Comments))
		}
	})
}

func TestScaledFrequency(t *testing.T) {
	for q := 1; q <= NumComplexQueries; q++ {
		base := ScaledFrequency(q, 60000)
		if base != Table4Frequencies[q-1] {
			t.Fatalf("Q%d base frequency %d, want %d", q, base, Table4Frequencies[q-1])
		}
		big := ScaledFrequency(q, 6000000)
		if big < base {
			t.Fatalf("Q%d frequency must grow with scale: %d < %d", q, big, base)
		}
		tiny := ScaledFrequency(q, 100)
		if tiny < 1 {
			t.Fatal("frequency must stay >= 1")
		}
	}
}

func TestZodiacSign(t *testing.T) {
	// 1990-03-25 is Aries; 1990-03-10 is Pisces.
	aries := int64(638323200000)  // 1990-03-25 UTC
	pisces := int64(637027200000) // 1990-03-10 UTC
	if ZodiacSign(aries) == ZodiacSign(pisces) {
		t.Fatal("sign boundary not respected")
	}
	for m := int64(0); m < 12; m++ {
		s := ZodiacSign(m * 31 * 24 * 3600 * 1000)
		if s < 0 || s > 11 {
			t.Fatalf("sign out of range: %d", s)
		}
	}
}
