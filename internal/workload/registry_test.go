package workload

import (
	"fmt"
	"reflect"
	"testing"

	"ldbcsnb/internal/datagen"
	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/xrand"
)

// TestComplexRegistryShape pins the registry's metadata: one descriptor
// per query, numbered 1..14, carrying the exact Table 4 frequency and both
// callbacks.
func TestComplexRegistryShape(t *testing.T) {
	for i := range Complex {
		spec := &Complex[i]
		if spec.Num != i+1 {
			t.Fatalf("Complex[%d].Num = %d", i, spec.Num)
		}
		if want := fmt.Sprintf("Q%d", i+1); spec.Name != want {
			t.Fatalf("Complex[%d].Name = %q, want %q", i, spec.Name, want)
		}
		if spec.Frequency != Table4Frequencies[i] {
			t.Fatalf("Complex[%d].Frequency = %d, want %d", i, spec.Frequency, Table4Frequencies[i])
		}
		if spec.Bind == nil || spec.RunTxn == nil || spec.RunView == nil {
			t.Fatalf("Complex[%d] missing Bind/RunTxn/RunView", i)
		}
	}
}

// TestComplexRegistryRunsBothPaths executes every registry descriptor with
// one bound parameter set against both readers and requires identical walk
// seeds — the driver-facing counterpart of the per-query equivalence tests.
func TestComplexRegistryRunsBothPaths(t *testing.T) {
	st, d := setup(t)
	pools := &ParamPools{
		FirstNames:   []string{"Karl"},
		CountryX:     0,
		CountryY:     1,
		NumCountries: 4,
		MaxDate:      datagen.UpdateCut,
		StartDate:    datagen.SimStart,
		WindowMillis: datagen.SimEnd - datagen.SimStart,
		BeforeYear:   2013,
	}
	for i := range d.Persons {
		if i%11 == 0 {
			pools.Persons = append(pools.Persons, d.Persons[i].ID)
		}
	}
	pools.PersonsQ5 = pools.Persons
	for i := 0; i < 8; i++ {
		pools.Tags = append(pools.Tags, ids.DimensionID(ids.KindTag, uint32(i)))
		pools.TagClasses = append(pools.TagClasses, ids.DimensionID(ids.KindTagClass, uint32(i%4)))
	}
	v := st.CurrentView()
	scV, scT := NewScratch(), NewScratch()
	st.View(func(tx *store.Txn) {
		for qi := range Complex {
			spec := &Complex[qi]
			// Identical rand streams give identical bindings; Bind must not
			// depend on the reader.
			rA := xrand.New(42, uint64(qi))
			rB := xrand.New(42, uint64(qi))
			pA, pB := spec.Bind(pools, rA), spec.Bind(pools, rB)
			if pA != pB {
				t.Fatalf("%s: Bind not deterministic: %+v vs %+v", spec.Name, pA, pB)
			}
			resV := spec.RunView(v, scV, pA)
			resT := spec.RunTxn(tx, scT, pA)
			if !reflect.DeepEqual(resV, resT) {
				t.Fatalf("%s: seeds diverge between paths: view %+v txn %+v", spec.Name, resV, resT)
			}
		}
	})
}
