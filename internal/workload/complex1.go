package workload

import (
	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/store"
)

// Q1 — Extract description of friends with a given name. Given a person's
// firstName, return up to 20 people with the same first name, sorted by
// increasing distance (max 3) from a given person, and within distance by
// last name then ID. Results include workplaces and places of study.

// Q1Row is one Q1 result.
type Q1Row struct {
	Person       ids.ID
	Distance     int
	LastName     string
	Universities []string
	Companies    []string
}

// Q1 runs the query for (start person, first name): a layered BFS to
// distance 3 with candidates streaming through a bounded top-20 heap;
// university/company lookups run only for the rows that survive the limit.
func Q1[R store.Reader](r R, sc *Scratch, start ids.ID, firstName string) []Q1Row {
	const limit = 20
	less := func(a, b Q1Row) bool {
		if a.Distance != b.Distance {
			return a.Distance < b.Distance
		}
		if a.LastName != b.LastName {
			return a.LastName < b.LastName
		}
		return a.Person < b.Person
	}
	top := newTopK(limit, less)

	// Layered BFS in one growing buffer: sc.env[head:layerEnd] is the
	// frontier of the current depth, discoveries append behind it.
	sc.begin(r)
	seen := sc.newSeen()
	seen.tryMark(start)
	sc.env = append(sc.env[:0], start)
	head, layerEnd := 0, 1
	for d := 1; d <= 3; d++ {
		for ; head < layerEnd; head++ {
			for _, e := range r.Out(sc.env[head], store.EdgeKnows) {
				if !seen.tryMark(e.To) {
					continue
				}
				sc.env = append(sc.env, e.To)
				if r.Prop(e.To, store.PropFirstName).Str() == firstName {
					top.Push(Q1Row{
						Person:   e.To,
						Distance: d,
						LastName: r.Prop(e.To, store.PropLastName).Str(),
					})
				}
			}
		}
		layerEnd = len(sc.env)
	}

	rows := top.Sorted()
	for i := range rows {
		for _, s := range r.Out(rows[i].Person, store.EdgeStudyAt) {
			rows[i].Universities = append(rows[i].Universities, r.Prop(s.To, store.PropName).Str())
		}
		for _, w := range r.Out(rows[i].Person, store.EdgeWorkAt) {
			rows[i].Companies = append(rows[i].Companies, r.Prop(w.To, store.PropName).Str())
		}
	}
	return rows
}

// Q2 — Find the newest 20 posts and comments from your friends, created
// before (and including) a given date. Sort descending by creation date,
// ascending by message ID.

// MessageRow is a (message, creator, date) result row shared by Q2/Q9.
type MessageRow struct {
	Message      ids.ID
	Creator      ids.ID
	CreationDate int64
}

// Q2 runs the query.
func Q2[R store.Reader](r R, sc *Scratch, start ids.ID, maxDate int64) []MessageRow {
	sc.begin(r)
	return topMessagesOf(r, friendsOf(r, sc, start), maxDate, 20)
}

// messageRowLess is the (date desc, message asc) result order of Q2/Q9 — a
// total order, since message IDs are unique.
func messageRowLess(a, b MessageRow) bool {
	if a.CreationDate != b.CreationDate {
		return a.CreationDate > b.CreationDate
	}
	return a.Message < b.Message
}

// topMessagesOf returns the newest messages of a person set before maxDate,
// sorted (date desc, id asc), capped at limit by a bounded top-k heap.
// Shared by Q2 (1-hop) and Q9 (2-hop).
func topMessagesOf[R store.Reader](r R, persons []ids.ID, maxDate int64, limit int) []MessageRow {
	top := newTopK(limit, messageRowLess)
	for _, p := range persons {
		for _, m := range messagesOf(r, p) {
			if m.Stamp <= maxDate {
				top.Push(MessageRow{Message: m.To, Creator: p, CreationDate: m.Stamp})
			}
		}
	}
	return top.Sorted()
}

// Q3 — Friends within 2 steps that recently travelled to countries X and Y:
// persons who posted from both foreign countries within the period, not
// being located in either. Top 20 by total message count descending.

// Q3Row is one Q3 result.
type Q3Row struct {
	Person ids.ID
	CountX int
	CountY int
}

// Q3 runs the query; countryX/countryY are dict country indices, the window
// is [startDate, startDate+durationMillis).
func Q3[R store.Reader](r R, sc *Scratch, start ids.ID, countryX, countryY int, startDate, durationMillis int64) []Q3Row {
	sc.begin(r)
	end := startDate + durationMillis
	top := newTopK(20, func(a, b Q3Row) bool {
		ta, tb := a.CountX+a.CountY, b.CountX+b.CountY
		if ta != tb {
			return ta > tb
		}
		return a.Person < b.Person
	})
	env, _ := friendsAndFoF(r, sc, start)
	for _, p := range env {
		home := int(r.Prop(p, store.PropCountry).Int())
		if home == countryX || home == countryY {
			continue
		}
		var cx, cy int
		for _, m := range messagesOf(r, p) {
			if m.Stamp < startDate || m.Stamp >= end {
				continue
			}
			switch int(r.Prop(m.To, store.PropCountry).Int()) {
			case countryX:
				cx++
			case countryY:
				cy++
			}
		}
		if cx > 0 && cy > 0 {
			top.Push(Q3Row{Person: p, CountX: cx, CountY: cy})
		}
	}
	return top.Sorted()
}

// Q4 — New topics: the top 10 most popular tags on posts created by the
// person's friends within the interval, excluding tags that those friends
// already used on posts before it.

// Q4Row is one Q4 result.
type Q4Row struct {
	Tag   ids.ID
	Name  string
	Count int
}

// Q4 runs the query over the window [startDate, startDate+durationMillis).
func Q4[R store.Reader](r R, sc *Scratch, start ids.ID, startDate, durationMillis int64) []Q4Row {
	sc.begin(r)
	end := startDate + durationMillis
	counts := map[ids.ID]int{}
	old := sc.newSeen()
	for _, f := range friendsOf(r, sc, start) {
		for _, m := range messagesOf(r, f) {
			if m.To.Kind() != ids.KindPost {
				continue
			}
			if m.Stamp >= end {
				continue
			}
			for _, te := range r.Out(m.To, store.EdgeHasTag) {
				if m.Stamp < startDate {
					old.tryMark(te.To)
				} else {
					counts[te.To]++
				}
			}
		}
	}
	// (count desc, name asc, tag asc): the tag tie-break makes the order a
	// total one even when distinct tags share a name.
	top := newTopK(10, func(a, b Q4Row) bool {
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Tag < b.Tag
	})
	for tag, n := range counts {
		if old.has(tag) {
			continue
		}
		top.Push(Q4Row{Tag: tag, Name: r.Prop(tag, store.PropName).Str(), Count: n})
	}
	return top.Sorted()
}

// Q5 — New groups: forums that the friends and friends of friends joined
// after a given date, scored by the number of posts in the forum created by
// any of those persons. Top 20 descending.

// Q5Row is one Q5 result.
type Q5Row struct {
	Forum ids.ID
	Title string
	Count int
}

// Q5 runs the query. This is the parameter-curation example of §4.1: its
// cost tracks the 2-hop environment size.
func Q5[R store.Reader](r R, sc *Scratch, start ids.ID, minDate int64) []Q5Row {
	sc.begin(r)
	env, inEnv := friendsAndFoF(r, sc, start)
	// Forums joined after minDate by anyone in the environment, collected
	// in deterministic first-seen order into sc.aux.
	joined := sc.newSeen()
	sc.aux = sc.aux[:0]
	for _, p := range env {
		for _, fe := range r.In(p, store.EdgeHasMember) {
			if fe.Stamp > minDate && joined.tryMark(fe.To) {
				sc.aux = append(sc.aux, fe.To)
			}
		}
	}
	top := newTopK(20, func(a, b Q5Row) bool {
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		return a.Forum < b.Forum
	})
	for _, forum := range sc.aux {
		count := 0
		for _, pe := range r.Out(forum, store.EdgeContainerOf) {
			for _, ce := range r.Out(pe.To, store.EdgeHasCreator) {
				// inEnv also contains start, which is not part of the
				// environment — exclude it explicitly.
				if ce.To != start && inEnv.has(ce.To) {
					count++
				}
			}
		}
		top.Push(Q5Row{Forum: forum, Title: r.Prop(forum, store.PropTitle).Str(), Count: count})
	}
	return top.Sorted()
}

// Q6 — Tag co-occurrence: among posts of friends and friends of friends
// that carry the given tag, the top 10 other tags by post count.

// Q6Row is one Q6 result.
type Q6Row struct {
	Tag   ids.ID
	Name  string
	Count int
}

// Q6 runs the query; tag is a store tag node ID.
func Q6[R store.Reader](r R, sc *Scratch, start ids.ID, tag ids.ID) []Q6Row {
	sc.begin(r)
	counts := map[ids.ID]int{}
	env, _ := friendsAndFoF(r, sc, start)
	for _, p := range env {
		for _, m := range messagesOf(r, p) {
			if m.To.Kind() != ids.KindPost {
				continue
			}
			tags := r.Out(m.To, store.EdgeHasTag)
			has := false
			for _, te := range tags {
				if te.To == tag {
					has = true
					break
				}
			}
			if !has {
				continue
			}
			for _, te := range tags {
				if te.To != tag {
					counts[te.To]++
				}
			}
		}
	}
	top := newTopK(10, func(a, b Q6Row) bool {
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Tag < b.Tag
	})
	for t, n := range counts {
		top.Push(Q6Row{Tag: t, Name: r.Prop(t, store.PropName).Str(), Count: n})
	}
	return top.Sorted()
}

// Q7 — Recent likes: the most recent likes on any of the person's
// messages, one row per like, with the latency between message and like
// and a flag for likers outside the direct friends. Top 20 by like date
// descending, then liker ID ascending.

// Q7Row is one Q7 result.
type Q7Row struct {
	Liker         ids.ID
	Message       ids.ID
	LikeDate      int64
	LatencyMillis int64
	IsNew         bool // liker is not a direct friend
}

// Q7 runs the query.
func Q7[R store.Reader](r R, sc *Scratch, start ids.ID) []Q7Row {
	sc.begin(r)
	friends := sc.newSeen()
	for _, e := range r.Out(start, store.EdgeKnows) {
		if e.To != start {
			friends.tryMark(e.To)
		}
	}
	// Most recent like per liker.
	best := map[ids.ID]Q7Row{}
	for _, m := range messagesOf(r, start) {
		for _, le := range r.In(m.To, store.EdgeLikes) {
			row := Q7Row{
				Liker:         le.To,
				Message:       m.To,
				LikeDate:      le.Stamp,
				LatencyMillis: le.Stamp - m.Stamp,
				IsNew:         !friends.has(le.To),
			}
			if prev, ok := best[le.To]; !ok || row.LikeDate > prev.LikeDate ||
				(row.LikeDate == prev.LikeDate && row.Message < prev.Message) {
				best[le.To] = row
			}
		}
	}
	top := newTopK(20, func(a, b Q7Row) bool {
		if a.LikeDate != b.LikeDate {
			return a.LikeDate > b.LikeDate
		}
		return a.Liker < b.Liker
	})
	for _, r := range best {
		top.Push(r)
	}
	return top.Sorted()
}
