package workload

import (
	"sort"

	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/store"
)

// Q1 — Extract description of friends with a given name. Given a person's
// firstName, return up to 20 people with the same first name, sorted by
// increasing distance (max 3) from a given person, and within distance by
// last name then ID. Results include workplaces and places of study.

// Q1Row is one Q1 result.
type Q1Row struct {
	Person       ids.ID
	Distance     int
	LastName     string
	Universities []string
	Companies    []string
}

// Q1 runs the query for (start person, first name).
func Q1(tx *store.Txn, start ids.ID, firstName string) []Q1Row {
	const limit = 20
	// BFS to distance 3 over knows.
	dist := map[ids.ID]int{start: 0}
	frontier := []ids.ID{start}
	var matches []Q1Row
	for d := 1; d <= 3; d++ {
		var next []ids.ID
		for _, p := range frontier {
			for _, e := range tx.Out(p, store.EdgeKnows) {
				if _, ok := dist[e.To]; ok {
					continue
				}
				dist[e.To] = d
				next = append(next, e.To)
				if tx.Prop(e.To, store.PropFirstName).Str() == firstName {
					row := Q1Row{
						Person:   e.To,
						Distance: d,
						LastName: tx.Prop(e.To, store.PropLastName).Str(),
					}
					for _, s := range tx.Out(e.To, store.EdgeStudyAt) {
						row.Universities = append(row.Universities, tx.Prop(s.To, store.PropName).Str())
					}
					for _, w := range tx.Out(e.To, store.EdgeWorkAt) {
						row.Companies = append(row.Companies, tx.Prop(w.To, store.PropName).Str())
					}
					matches = append(matches, row)
				}
			}
		}
		frontier = next
	}
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Distance != matches[j].Distance {
			return matches[i].Distance < matches[j].Distance
		}
		if matches[i].LastName != matches[j].LastName {
			return matches[i].LastName < matches[j].LastName
		}
		return matches[i].Person < matches[j].Person
	})
	if len(matches) > limit {
		matches = matches[:limit]
	}
	return matches
}

// Q1View is Q1 on the frozen snapshot view: the BFS visited set is a dense
// ordinal bitset, candidates stream through a bounded top-20 heap instead
// of being fully sorted, and university/company lookups run only for the
// rows that survive the limit. Results are identical to Q1 at the same
// snapshot timestamp.
func Q1View(v *store.SnapshotView, sc *Scratch, start ids.ID, firstName string) []Q1Row {
	const limit = 20
	less := func(a, b Q1Row) bool {
		if a.Distance != b.Distance {
			return a.Distance < b.Distance
		}
		if a.LastName != b.LastName {
			return a.LastName < b.LastName
		}
		return a.Person < b.Person
	}
	top := newTopK(limit, less)

	// Layered BFS in one growing buffer: sc.env[head:layerEnd] is the
	// frontier of the current depth, discoveries append behind it.
	sc.reset(v)
	sc.markSeen(v, start)
	sc.env = append(sc.env[:0], start)
	head, layerEnd := 0, 1
	for d := 1; d <= 3; d++ {
		for ; head < layerEnd; head++ {
			for _, e := range v.Out(sc.env[head], store.EdgeKnows) {
				if !sc.markSeen(v, e.To) {
					continue
				}
				sc.env = append(sc.env, e.To)
				if v.Prop(e.To, store.PropFirstName).Str() == firstName {
					top.Push(Q1Row{
						Person:   e.To,
						Distance: d,
						LastName: v.Prop(e.To, store.PropLastName).Str(),
					})
				}
			}
		}
		layerEnd = len(sc.env)
	}

	rows := top.Sorted()
	for i := range rows {
		for _, s := range v.Out(rows[i].Person, store.EdgeStudyAt) {
			rows[i].Universities = append(rows[i].Universities, v.Prop(s.To, store.PropName).Str())
		}
		for _, w := range v.Out(rows[i].Person, store.EdgeWorkAt) {
			rows[i].Companies = append(rows[i].Companies, v.Prop(w.To, store.PropName).Str())
		}
	}
	return rows
}

// Q2 — Find the newest 20 posts and comments from your friends, created
// before (and including) a given date. Sort descending by creation date,
// ascending by message ID.

// MessageRow is a (message, creator, date) result row shared by Q2/Q9.
type MessageRow struct {
	Message      ids.ID
	Creator      ids.ID
	CreationDate int64
}

// Q2 runs the query.
func Q2(tx *store.Txn, start ids.ID, maxDate int64) []MessageRow {
	return topMessagesOf(tx, friendsOf(tx, start), maxDate, 20)
}

// Q2View is Q2 on the frozen snapshot view.
func Q2View(v *store.SnapshotView, sc *Scratch, start ids.ID, maxDate int64) []MessageRow {
	return topMessagesOfView(v, friendsOfView(v, sc, start), maxDate, 20)
}

// messageRowLess is the (date desc, message asc) result order of Q2/Q9 — a
// total order, since message IDs are unique.
func messageRowLess(a, b MessageRow) bool {
	if a.CreationDate != b.CreationDate {
		return a.CreationDate > b.CreationDate
	}
	return a.Message < b.Message
}

// topMessagesOfView is topMessagesOf on the frozen view: adjacency comes
// from the CSR slab (no per-person allocation) and the LIMIT is enforced by
// a bounded top-k heap instead of sorting every candidate row.
func topMessagesOfView(v *store.SnapshotView, persons []ids.ID, maxDate int64, limit int) []MessageRow {
	top := newTopK(limit, messageRowLess)
	for _, p := range persons {
		for _, m := range messagesOfView(v, p) {
			if m.Stamp <= maxDate {
				top.Push(MessageRow{Message: m.To, Creator: p, CreationDate: m.Stamp})
			}
		}
	}
	return top.Sorted()
}

// topMessagesOf returns the newest messages of a person set before
// maxDate, sorted (date desc, id asc), capped at limit. Shared by Q2 (1-hop)
// and Q9 (2-hop).
func topMessagesOf(tx *store.Txn, persons []ids.ID, maxDate int64, limit int) []MessageRow {
	var rows []MessageRow
	for _, p := range persons {
		for _, m := range messagesOf(tx, p) {
			if m.Stamp <= maxDate {
				rows = append(rows, MessageRow{Message: m.To, Creator: p, CreationDate: m.Stamp})
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].CreationDate != rows[j].CreationDate {
			return rows[i].CreationDate > rows[j].CreationDate
		}
		return rows[i].Message < rows[j].Message
	})
	if len(rows) > limit {
		rows = rows[:limit]
	}
	return rows
}

// Q3 — Friends within 2 steps that recently travelled to countries X and Y:
// persons who posted from both foreign countries within the period, not
// being located in either. Top 20 by total message count descending.

// Q3Row is one Q3 result.
type Q3Row struct {
	Person ids.ID
	CountX int
	CountY int
}

// Q3 runs the query; countryX/countryY are dict country indices, the window
// is [start, start+durationMillis).
func Q3(tx *store.Txn, start ids.ID, countryX, countryY int, startDate, durationMillis int64) []Q3Row {
	end := startDate + durationMillis
	var rows []Q3Row
	for _, p := range friendsAndFoF(tx, start) {
		home := int(tx.Prop(p, store.PropCountry).Int())
		if home == countryX || home == countryY {
			continue
		}
		var cx, cy int
		for _, m := range messagesOf(tx, p) {
			if m.Stamp < startDate || m.Stamp >= end {
				continue
			}
			switch int(tx.Prop(m.To, store.PropCountry).Int()) {
			case countryX:
				cx++
			case countryY:
				cy++
			}
		}
		if cx > 0 && cy > 0 {
			rows = append(rows, Q3Row{Person: p, CountX: cx, CountY: cy})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		ti, tj := rows[i].CountX+rows[i].CountY, rows[j].CountX+rows[j].CountY
		if ti != tj {
			return ti > tj
		}
		return rows[i].Person < rows[j].Person
	})
	if len(rows) > 20 {
		rows = rows[:20]
	}
	return rows
}

// Q4 — New topics: the top 10 most popular tags on posts created by the
// person's friends within the interval, excluding tags that those friends
// already used on posts before it.

// Q4Row is one Q4 result.
type Q4Row struct {
	Tag   ids.ID
	Name  string
	Count int
}

// Q4 runs the query over the window [startDate, startDate+durationMillis).
func Q4(tx *store.Txn, start ids.ID, startDate, durationMillis int64) []Q4Row {
	end := startDate + durationMillis
	counts := map[ids.ID]int{}
	old := map[ids.ID]bool{}
	for _, f := range friendsOf(tx, start) {
		for _, m := range messagesOf(tx, f) {
			if m.To.Kind() != ids.KindPost {
				continue
			}
			if m.Stamp >= end {
				continue
			}
			for _, te := range tx.Out(m.To, store.EdgeHasTag) {
				if m.Stamp < startDate {
					old[te.To] = true
				} else {
					counts[te.To]++
				}
			}
		}
	}
	var rows []Q4Row
	for tag, n := range counts {
		if old[tag] {
			continue
		}
		rows = append(rows, Q4Row{Tag: tag, Name: tx.Prop(tag, store.PropName).Str(), Count: n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].Name < rows[j].Name
	})
	if len(rows) > 10 {
		rows = rows[:10]
	}
	return rows
}

// Q5 — New groups: forums that the friends and friends of friends joined
// after a given date, scored by the number of posts in the forum created by
// any of those persons. Top 20 descending.

// Q5Row is one Q5 result.
type Q5Row struct {
	Forum ids.ID
	Title string
	Count int
}

// Q5 runs the query. This is the parameter-curation example of §4.1: its
// cost tracks the 2-hop environment size.
func Q5(tx *store.Txn, start ids.ID, minDate int64) []Q5Row {
	env := friendsAndFoF(tx, start)
	inEnv := make(map[ids.ID]bool, len(env))
	for _, p := range env {
		inEnv[p] = true
	}
	// Forums joined after minDate by anyone in the environment.
	joined := map[ids.ID]bool{}
	for _, p := range env {
		for _, fe := range tx.In(p, store.EdgeHasMember) {
			if fe.Stamp > minDate {
				joined[fe.To] = true
			}
		}
	}
	var rows []Q5Row
	for forum := range joined {
		count := 0
		for _, pe := range tx.Out(forum, store.EdgeContainerOf) {
			for _, ce := range tx.Out(pe.To, store.EdgeHasCreator) {
				if inEnv[ce.To] {
					count++
				}
			}
		}
		rows = append(rows, Q5Row{Forum: forum, Title: tx.Prop(forum, store.PropTitle).Str(), Count: count})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].Forum < rows[j].Forum
	})
	if len(rows) > 20 {
		rows = rows[:20]
	}
	return rows
}

// Q6 — Tag co-occurrence: among posts of friends and friends of friends
// that carry the given tag, the top 10 other tags by post count.

// Q6Row is one Q6 result.
type Q6Row struct {
	Tag   ids.ID
	Name  string
	Count int
}

// Q6 runs the query; tag is a store tag node ID.
func Q6(tx *store.Txn, start ids.ID, tag ids.ID) []Q6Row {
	counts := map[ids.ID]int{}
	for _, p := range friendsAndFoF(tx, start) {
		for _, m := range messagesOf(tx, p) {
			if m.To.Kind() != ids.KindPost {
				continue
			}
			tags := tx.Out(m.To, store.EdgeHasTag)
			has := false
			for _, te := range tags {
				if te.To == tag {
					has = true
					break
				}
			}
			if !has {
				continue
			}
			for _, te := range tags {
				if te.To != tag {
					counts[te.To]++
				}
			}
		}
	}
	var rows []Q6Row
	for t, n := range counts {
		rows = append(rows, Q6Row{Tag: t, Name: tx.Prop(t, store.PropName).Str(), Count: n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].Name < rows[j].Name
	})
	if len(rows) > 10 {
		rows = rows[:10]
	}
	return rows
}

// Q7 — Recent likes: the most recent likes on any of the person's
// messages, one row per like, with the latency between message and like
// and a flag for likers outside the direct friends. Top 20 by like date
// descending, then liker ID ascending.

// Q7Row is one Q7 result.
type Q7Row struct {
	Liker         ids.ID
	Message       ids.ID
	LikeDate      int64
	LatencyMillis int64
	IsNew         bool // liker is not a direct friend
}

// Q7 runs the query.
func Q7(tx *store.Txn, start ids.ID) []Q7Row {
	friends := map[ids.ID]bool{}
	for _, f := range friendsOf(tx, start) {
		friends[f] = true
	}
	// Most recent like per liker.
	best := map[ids.ID]Q7Row{}
	for _, m := range messagesOf(tx, start) {
		for _, le := range tx.In(m.To, store.EdgeLikes) {
			row := Q7Row{
				Liker:         le.To,
				Message:       m.To,
				LikeDate:      le.Stamp,
				LatencyMillis: le.Stamp - m.Stamp,
				IsNew:         !friends[le.To],
			}
			if prev, ok := best[le.To]; !ok || row.LikeDate > prev.LikeDate ||
				(row.LikeDate == prev.LikeDate && row.Message < prev.Message) {
				best[le.To] = row
			}
		}
	}
	rows := make([]Q7Row, 0, len(best))
	for _, r := range best {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].LikeDate != rows[j].LikeDate {
			return rows[i].LikeDate > rows[j].LikeDate
		}
		return rows[i].Liker < rows[j].Liker
	})
	if len(rows) > 20 {
		rows = rows[:20]
	}
	return rows
}
