package workload

import (
	"reflect"
	"testing"

	"ldbcsnb/internal/datagen"
	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/schema"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/xrand"
)

// The Txn-vs-view equivalence property tests: every query has exactly one
// implementation, so these tests pin that the two Reader instantiations
// (*store.Txn and *store.SnapshotView) return identical results at the same
// snapshot timestamp — for all of Q1-Q14 (including the Q9Join plans),
// S1-S7 and the short-read chain.

// findCoTag returns a tag that appears on some tagged post (zero if none),
// giving Q6 a parameter with hits on both generated and random graphs.
func findCoTag(tx *store.Txn) ids.ID {
	for _, m := range tx.NodesOfKind(ids.KindPost) {
		if tags := tx.Out(m, store.EdgeHasTag); len(tags) > 0 {
			return tags[0].To
		}
	}
	return 0
}

// assertQueriesAgree compares every query's view instantiation against its
// Txn instantiation at the same snapshot timestamp, for a sample of start
// persons and messages. The most expensive queries (Q9Join's hash plans,
// Q13, Q14) run on a prefix of the persons to bound test time.
func assertQueriesAgree(t *testing.T, st *store.Store, persons, messages []ids.ID, maxDate int64) {
	t.Helper()
	v := st.CurrentView()
	scV, scT := NewScratch(), NewScratch()
	const heavyCap = 8
	st.View(func(tx *store.Txn) {
		if v.Timestamp() != tx.Snapshot() {
			t.Fatalf("snapshots diverge: view %d txn %d", v.Timestamp(), tx.Snapshot())
		}
		tag := findCoTag(tx)
		rootClass := ids.DimensionID(ids.KindTagClass, 0)
		for i, p := range persons {
			// Traversal helpers (results alias the scratch: copy the view
			// side before running the txn side).
			scV.begin(v)
			scT.begin(tx)
			gotF := append([]ids.ID(nil), friendsOf(v, scV, p)...)
			if want := friendsOf(tx, scT, p); !idsEqual(gotF, want) {
				t.Fatalf("friendsOf(%v): view %v txn %v", p, gotF, want)
			}
			gotE := append([]ids.ID(nil), TwoHopEnv(v, scV, p)...)
			if want := TwoHopEnv(tx, scT, p); !idsEqual(gotE, want) {
				t.Fatalf("friendsAndFoF(%v): view %v txn %v", p, gotE, want)
			}

			if got, want := Q1(v, scV, p, "Karl"), Q1(tx, scT, p, "Karl"); !rowsEqual(t, got, want) {
				t.Fatalf("Q1(%v): view %+v txn %+v", p, got, want)
			}
			if got, want := Q2(v, scV, p, maxDate), Q2(tx, scT, p, maxDate); !rowsEqual(t, got, want) {
				t.Fatalf("Q2(%v): view %+v txn %+v", p, got, want)
			}
			if got, want := Q3(v, scV, p, 0, 1, 0, maxDate), Q3(tx, scT, p, 0, 1, 0, maxDate); !rowsEqual(t, got, want) {
				t.Fatalf("Q3(%v): view %+v txn %+v", p, got, want)
			}
			half := maxDate / 2
			if got, want := Q4(v, scV, p, half, maxDate-half), Q4(tx, scT, p, half, maxDate-half); !rowsEqual(t, got, want) {
				t.Fatalf("Q4(%v): view %+v txn %+v", p, got, want)
			}
			if got, want := Q5(v, scV, p, 0), Q5(tx, scT, p, 0); !rowsEqual(t, got, want) {
				t.Fatalf("Q5(%v): view %+v txn %+v", p, got, want)
			}
			if tag != 0 {
				if got, want := Q6(v, scV, p, tag), Q6(tx, scT, p, tag); !rowsEqual(t, got, want) {
					t.Fatalf("Q6(%v): view %+v txn %+v", p, got, want)
				}
			}
			if got, want := Q7(v, scV, p), Q7(tx, scT, p); !rowsEqual(t, got, want) {
				t.Fatalf("Q7(%v): view %+v txn %+v", p, got, want)
			}
			if got, want := Q8(v, scV, p), Q8(tx, scT, p); !rowsEqual(t, got, want) {
				t.Fatalf("Q8(%v): view %+v txn %+v", p, got, want)
			}
			if got, want := Q9(v, scV, p, maxDate), Q9(tx, scT, p, maxDate); !rowsEqual(t, got, want) {
				t.Fatalf("Q9(%v): view %+v txn %+v", p, got, want)
			}
			if got, want := Q10(v, scV, p, i%12), Q10(tx, scT, p, i%12); !rowsEqual(t, got, want) {
				t.Fatalf("Q10(%v): view %+v txn %+v", p, got, want)
			}
			if got, want := Q11(v, scV, p, i%4, 2013), Q11(tx, scT, p, i%4, 2013); !rowsEqual(t, got, want) {
				t.Fatalf("Q11(%v): view %+v txn %+v", p, got, want)
			}
			if got, want := Q12(v, scV, p, rootClass), Q12(tx, scT, p, rootClass); !rowsEqual(t, got, want) {
				t.Fatalf("Q12(%v): view %+v txn %+v", p, got, want)
			}

			if i < heavyCap {
				for _, plan := range []Q9Plan{
					{JoinINL, JoinINL},
					{JoinHash, JoinINL},
					{JoinINL, JoinHash},
					{JoinHash, JoinHash},
				} {
					got, want := Q9Join(v, scV, p, maxDate, plan), Q9Join(tx, scT, p, maxDate, plan)
					if !rowsEqual(t, got, want) {
						t.Fatalf("Q9Join(%v, %+v): view %+v txn %+v", p, plan, got, want)
					}
				}
				other := persons[(i+1)%len(persons)]
				if got, want := Q13(v, scV, p, other), Q13(tx, scT, p, other); got != want {
					t.Fatalf("Q13(%v,%v): view %d txn %d", p, other, got, want)
				}
				if got, want := Q14(v, scV, p, other), Q14(tx, scT, p, other); !rowsEqual(t, got, want) {
					t.Fatalf("Q14(%v,%v): view %+v txn %+v", p, other, got, want)
				}
			}

			gotS1, gotOK := S1(v, p)
			wantS1, wantOK := S1(tx, p)
			if gotOK != wantOK || gotS1 != wantS1 {
				t.Fatalf("S1(%v): view %+v/%v txn %+v/%v", p, gotS1, gotOK, wantS1, wantOK)
			}
			if got, want := S2(v, p), S2(tx, p); !rowsEqual(t, got, want) {
				t.Fatalf("S2(%v): view %+v txn %+v", p, got, want)
			}
			if got, want := S3(v, p), S3(tx, p); !rowsEqual(t, got, want) {
				t.Fatalf("S3(%v): view %+v txn %+v", p, got, want)
			}
		}
		for _, m := range messages {
			gotS4, gotOK := S4(v, m)
			wantS4, wantOK := S4(tx, m)
			if gotOK != wantOK || gotS4 != wantS4 {
				t.Fatalf("S4(%v) diverges", m)
			}
			gotS5, gotOK5 := S5(v, m)
			wantS5, wantOK5 := S5(tx, m)
			if gotOK5 != wantOK5 || gotS5 != wantS5 {
				t.Fatalf("S5(%v) diverges", m)
			}
			gotS6, gotOK6 := S6(v, m)
			wantS6, wantOK6 := S6(tx, m)
			if gotOK6 != wantOK6 || gotS6 != wantS6 {
				t.Fatalf("S6(%v) diverges", m)
			}
			if got, want := S7(v, m), S7(tx, m); !rowsEqual(t, got, want) {
				t.Fatalf("S7(%v): view %+v txn %+v", m, got, want)
			}
		}
		// Short-read chain: identical seed streams must take identical
		// walks on the two paths (every step's result feeds the next
		// step's input pool, so diverging results would diverge the
		// stats). Fresh seed copies per run — the chain appends to them.
		rT := xrand.New(123, xrand.PurposeShortRead, 9)
		rV := xrand.New(123, xrand.PurposeShortRead, 9)
		statsT := RunShortReadChain(tx, DefaultShortReadMix, rT,
			append([]ids.ID(nil), persons...), append([]ids.ID(nil), messages...), nil)
		statsV := RunShortReadChain(v, DefaultShortReadMix, rV,
			append([]ids.ID(nil), persons...), append([]ids.ID(nil), messages...), nil)
		if statsT != statsV {
			t.Fatalf("short-read chain diverges: view %v txn %v", statsV, statsT)
		}
	})
}

func idsEqual(a, b []ids.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// rowsEqual compares result slices, treating nil and empty as equal (the
// top-k path returns empty slices where a full-sort path returns nil).
func rowsEqual[T any](t *testing.T, a, b []T) bool {
	t.Helper()
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

// sampleEntities picks start persons (including high-degree ones) and
// messages for the equivalence sweep.
func sampleEntities(t *testing.T, st *store.Store) (persons, messages []ids.ID) {
	t.Helper()
	st.View(func(tx *store.Txn) {
		all := tx.NodesOfKind(ids.KindPerson)
		for i, p := range all {
			if i%17 == 0 || tx.OutDegree(p, store.EdgeKnows) >= 8 {
				persons = append(persons, p)
			}
			if len(persons) >= 25 {
				break
			}
		}
		for i, m := range tx.NodesOfKind(ids.KindPost) {
			if i%29 == 0 {
				messages = append(messages, m)
			}
			if len(messages) >= 15 {
				break
			}
		}
		for i, m := range tx.NodesOfKind(ids.KindComment) {
			if i%31 == 0 {
				messages = append(messages, m)
			}
			if len(messages) >= 25 {
				break
			}
		}
	})
	return persons, messages
}

// TestViewQueriesMatchTxnQueries is the workload half of the equivalence
// property test: on the generated SNB graph, every query must return
// identical results from the view and Txn instantiations of its single
// implementation.
func TestViewQueriesMatchTxnQueries(t *testing.T) {
	st, _ := setup(t)
	persons, messages := sampleEntities(t, st)
	if len(persons) == 0 {
		t.Fatal("no sample persons")
	}
	assertQueriesAgree(t, st, persons, messages, datagen.UpdateCut)
}

// TestViewQueriesMatchUnderInterleavedUpdates replays the update stream in
// chunks against a bulk-loaded store and re-checks query equivalence after
// every chunk — the view must track each new epoch exactly.
func TestViewQueriesMatchUnderInterleavedUpdates(t *testing.T) {
	_, d := setup(t)
	bulk, updates := datagen.Split(d, datagen.UpdateCut)
	st := store.New()
	schema.RegisterIndexes(st)
	if err := schema.LoadDimensions(st); err != nil {
		t.Fatal(err)
	}
	if err := schema.Load(st, bulk); err != nil {
		t.Fatal(err)
	}
	if len(updates) == 0 {
		t.Skip("no updates at this scale")
	}
	persons, messages := sampleEntities(t, st)
	chunks := 5
	per := (len(updates) + chunks - 1) / chunks
	for start := 0; start < len(updates); start += per {
		end := start + per
		if end > len(updates) {
			end = len(updates)
		}
		for i := start; i < end; i++ {
			if err := ApplyUpdate(st, &updates[i]); err != nil {
				t.Fatalf("update %d: %v", i, err)
			}
		}
		assertQueriesAgree(t, st, persons, messages, datagen.SimEnd)
	}
}
