package workload

import (
	"reflect"
	"testing"

	"ldbcsnb/internal/datagen"
	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/schema"
	"ldbcsnb/internal/store"
)

// assertQueriesAgree compares every view-backed query formulation against
// its Txn formulation at the same snapshot timestamp, for a sample of
// start persons and messages.
func assertQueriesAgree(t *testing.T, st *store.Store, persons, messages []ids.ID, maxDate int64) {
	t.Helper()
	v := st.CurrentView()
	sc := NewScratch()
	st.View(func(tx *store.Txn) {
		if v.Timestamp() != tx.Snapshot() {
			t.Fatalf("snapshots diverge: view %d txn %d", v.Timestamp(), tx.Snapshot())
		}
		for _, p := range persons {
			if got, want := friendsOfView(v, sc, p), friendsOf(tx, p); !idsEqual(got, want) {
				t.Fatalf("friendsOf(%v): view %v txn %v", p, got, want)
			}
			if got, want := friendsAndFoFView(v, sc, p), friendsAndFoF(tx, p); !idsEqual(got, want) {
				t.Fatalf("friendsAndFoF(%v): view %v txn %v", p, got, want)
			}
			if got, want := Q1View(v, sc, p, "Karl"), Q1(tx, p, "Karl"); !rowsEqual(t, got, want) {
				t.Fatalf("Q1(%v): view %+v txn %+v", p, got, want)
			}
			if got, want := Q2View(v, sc, p, maxDate), Q2(tx, p, maxDate); !rowsEqual(t, got, want) {
				t.Fatalf("Q2(%v): view %+v txn %+v", p, got, want)
			}
			if got, want := Q8View(v, p), Q8(tx, p); !rowsEqual(t, got, want) {
				t.Fatalf("Q8(%v): view %+v txn %+v", p, got, want)
			}
			if got, want := Q9View(v, sc, p, maxDate), Q9(tx, p, maxDate); !rowsEqual(t, got, want) {
				t.Fatalf("Q9(%v): view %+v txn %+v", p, got, want)
			}
			for _, plan := range []Q9Plan{
				{JoinINL, JoinINL},
				{JoinHash, JoinINL},
				{JoinINL, JoinHash},
				{JoinHash, JoinHash},
			} {
				got, want := Q9JoinView(v, sc, p, maxDate, plan), Q9Join(tx, p, maxDate, plan)
				if !rowsEqual(t, got, want) {
					t.Fatalf("Q9Join(%v, %+v): view %+v txn %+v", p, plan, got, want)
				}
			}
			gotS1, gotOK := S1View(v, p)
			wantS1, wantOK := S1(tx, p)
			if gotOK != wantOK || gotS1 != wantS1 {
				t.Fatalf("S1(%v): view %+v/%v txn %+v/%v", p, gotS1, gotOK, wantS1, wantOK)
			}
			if got, want := S2View(v, p), S2(tx, p); !rowsEqual(t, got, want) {
				t.Fatalf("S2(%v): view %+v txn %+v", p, got, want)
			}
			if got, want := S3View(v, p), S3(tx, p); !rowsEqual(t, got, want) {
				t.Fatalf("S3(%v): view %+v txn %+v", p, got, want)
			}
		}
		for _, m := range messages {
			gotS4, gotOK := S4View(v, m)
			wantS4, wantOK := S4(tx, m)
			if gotOK != wantOK || gotS4 != wantS4 {
				t.Fatalf("S4(%v) diverges", m)
			}
			gotS5, gotOK5 := S5View(v, m)
			wantS5, wantOK5 := S5(tx, m)
			if gotOK5 != wantOK5 || gotS5 != wantS5 {
				t.Fatalf("S5(%v) diverges", m)
			}
			gotS6, gotOK6 := S6View(v, m)
			wantS6, wantOK6 := S6(tx, m)
			if gotOK6 != wantOK6 || gotS6 != wantS6 {
				t.Fatalf("S6(%v) diverges", m)
			}
			if got, want := S7View(v, m), S7(tx, m); !rowsEqual(t, got, want) {
				t.Fatalf("S7(%v): view %+v txn %+v", m, got, want)
			}
		}
	})
}

func idsEqual(a, b []ids.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// rowsEqual compares result slices, treating nil and empty as equal (the
// top-k path returns empty slices where the sort path returns nil).
func rowsEqual[T any](t *testing.T, a, b []T) bool {
	t.Helper()
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

// sampleEntities picks start persons (including high-degree ones) and
// messages for the equivalence sweep.
func sampleEntities(t *testing.T, st *store.Store) (persons, messages []ids.ID) {
	t.Helper()
	st.View(func(tx *store.Txn) {
		all := tx.NodesOfKind(ids.KindPerson)
		for i, p := range all {
			if i%17 == 0 || tx.OutDegree(p, store.EdgeKnows) >= 8 {
				persons = append(persons, p)
			}
			if len(persons) >= 25 {
				break
			}
		}
		for i, m := range tx.NodesOfKind(ids.KindPost) {
			if i%29 == 0 {
				messages = append(messages, m)
			}
			if len(messages) >= 15 {
				break
			}
		}
		for i, m := range tx.NodesOfKind(ids.KindComment) {
			if i%31 == 0 {
				messages = append(messages, m)
			}
			if len(messages) >= 25 {
				break
			}
		}
	})
	return persons, messages
}

// TestViewQueriesMatchTxnQueries is the workload half of the equivalence
// property test: on the generated SNB graph, every view-backed query must
// return results identical to the MVCC Txn path at the same snapshot.
func TestViewQueriesMatchTxnQueries(t *testing.T) {
	st, _ := setup(t)
	persons, messages := sampleEntities(t, st)
	if len(persons) == 0 {
		t.Fatal("no sample persons")
	}
	assertQueriesAgree(t, st, persons, messages, datagen.UpdateCut)
}

// TestViewQueriesMatchUnderInterleavedUpdates replays the update stream in
// chunks against a bulk-loaded store and re-checks query equivalence after
// every chunk — the view must track each new epoch exactly.
func TestViewQueriesMatchUnderInterleavedUpdates(t *testing.T) {
	_, d := setup(t)
	bulk, updates := datagen.Split(d, datagen.UpdateCut)
	st := store.New()
	schema.RegisterIndexes(st)
	if err := schema.LoadDimensions(st); err != nil {
		t.Fatal(err)
	}
	if err := schema.Load(st, bulk); err != nil {
		t.Fatal(err)
	}
	if len(updates) == 0 {
		t.Skip("no updates at this scale")
	}
	persons, messages := sampleEntities(t, st)
	chunks := 5
	per := (len(updates) + chunks - 1) / chunks
	for start := 0; start < len(updates); start += per {
		end := start + per
		if end > len(updates) {
			end = len(updates)
		}
		for i := start; i < end; i++ {
			if err := ApplyUpdate(st, &updates[i]); err != nil {
				t.Fatalf("update %d: %v", i, err)
			}
		}
		assertQueriesAgree(t, st, persons, messages, datagen.SimEnd)
	}
}
