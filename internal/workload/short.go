package workload

import (
	"sort"

	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/store"
)

// The 7 simple read-only queries (§4: profile and post views, "the bulk of
// the user queries"; Table 7). All are point lookups of O(log n)
// complexity, written once against store.Reader like the complex queries:
// on the view path every step is a lock-free point lookup. S1-S3 are the
// profile-view family, S4-S7 the post-view family; the driver chains them
// with the random walk of §4 (RunShortReadChain).

// S1Result is a person profile view.
type S1Result struct {
	FirstName    string
	LastName     string
	Birthday     int64
	LocationIP   string
	Browser      string
	Gender       int
	CreationDate int64
}

// S1 returns the basic profile of a person.
func S1[R store.Reader](r R, p ids.ID) (S1Result, bool) {
	props, ok := r.Props(p)
	if !ok {
		return S1Result{}, false
	}
	return S1Result{
		FirstName:    props.Get(store.PropFirstName).Str(),
		LastName:     props.Get(store.PropLastName).Str(),
		Birthday:     props.Get(store.PropBirthday).Int(),
		LocationIP:   props.Get(store.PropLocationIP).Str(),
		Browser:      props.Get(store.PropBrowserUsed).Str(),
		Gender:       int(props.Get(store.PropGender).Int()),
		CreationDate: props.Get(store.PropCreationDate).Int(),
	}, true
}

// S2 returns the person's 10 most recent messages (id, creation date),
// newest first, through a bounded top-10 heap.
func S2[R store.Reader](r R, p ids.ID) []MessageRow {
	top := newTopK(10, messageRowLess)
	for _, m := range messagesOf(r, p) {
		top.Push(MessageRow{Message: m.To, Creator: p, CreationDate: m.Stamp})
	}
	return top.Sorted()
}

// S3Row is one friendship of S3.
type S3Row struct {
	Friend       ids.ID
	CreationDate int64
}

// S3 returns the friends of a person with the friendship dates, newest
// friendship first (capped at 20, the paper's profile view cap).
func S3[R store.Reader](r R, p ids.ID) []S3Row {
	top := newTopK(20, func(a, b S3Row) bool {
		if a.CreationDate != b.CreationDate {
			return a.CreationDate > b.CreationDate
		}
		return a.Friend < b.Friend
	})
	for _, e := range r.Out(p, store.EdgeKnows) {
		top.Push(S3Row{Friend: e.To, CreationDate: e.Stamp})
	}
	return top.Sorted()
}

// S4Result is a message content view.
type S4Result struct {
	CreationDate int64
	Content      string // image file name for photos
}

// S4 returns a message's content and creation date.
func S4[R store.Reader](r R, m ids.ID) (S4Result, bool) {
	props, ok := r.Props(m)
	if !ok {
		return S4Result{}, false
	}
	content := props.Get(store.PropContent).Str()
	if content == "" {
		content = props.Get(store.PropImageFile).Str()
	}
	return S4Result{
		CreationDate: props.Get(store.PropCreationDate).Int(),
		Content:      content,
	}, true
}

// S5Result is a message creator view.
type S5Result struct {
	Creator   ids.ID
	FirstName string
	LastName  string
}

// S5 returns the creator of a message.
func S5[R store.Reader](r R, m ids.ID) (S5Result, bool) {
	cs := r.Out(m, store.EdgeHasCreator)
	if len(cs) == 0 {
		return S5Result{}, false
	}
	return S5Result{
		Creator:   cs[0].To,
		FirstName: r.Prop(cs[0].To, store.PropFirstName).Str(),
		LastName:  r.Prop(cs[0].To, store.PropLastName).Str(),
	}, true
}

// S6Result is a message's forum view.
type S6Result struct {
	Forum     ids.ID
	Title     string
	Moderator ids.ID
}

// S6 returns the forum containing a message (walking replyOf up to the
// root post for comments).
func S6[R store.Reader](r R, m ids.ID) (S6Result, bool) {
	cur := m
	for i := 0; i < 64 && cur.Kind() == ids.KindComment; i++ {
		parents := r.Out(cur, store.EdgeReplyOf)
		if len(parents) == 0 {
			return S6Result{}, false
		}
		cur = parents[0].To
	}
	containers := r.In(cur, store.EdgeContainerOf)
	if len(containers) == 0 {
		return S6Result{}, false
	}
	forum := containers[0].To
	var moderator ids.ID
	if ms := r.Out(forum, store.EdgeHasModerator); len(ms) > 0 {
		moderator = ms[0].To
	}
	return S6Result{
		Forum:     forum,
		Title:     r.Prop(forum, store.PropTitle).Str(),
		Moderator: moderator,
	}, true
}

// S7Row is one reply in S7.
type S7Row struct {
	Comment       ids.ID
	Author        ids.ID
	CreationDate  int64
	KnowsOriginal bool // reply author knows the original message author
}

// S7 returns the direct replies to a message, newest first. S7 has no
// LIMIT, so the result is sorted in full.
func S7[R store.Reader](r R, m ids.ID) []S7Row {
	var origAuthor ids.ID
	if cs := r.Out(m, store.EdgeHasCreator); len(cs) > 0 {
		origAuthor = cs[0].To
	}
	replies := r.In(m, store.EdgeReplyOf)
	rows := make([]S7Row, 0, len(replies))
	for _, re := range replies {
		var author ids.ID
		if cs := r.Out(re.To, store.EdgeHasCreator); len(cs) > 0 {
			author = cs[0].To
		}
		rows = append(rows, S7Row{
			Comment:       re.To,
			Author:        author,
			CreationDate:  re.Stamp,
			KnowsOriginal: origAuthor != 0 && author != 0 && isFriend(r, author, origAuthor),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].CreationDate != rows[j].CreationDate {
			return rows[i].CreationDate > rows[j].CreationDate
		}
		return rows[i].Comment < rows[j].Comment
	})
	return rows
}
