package workload

import (
	"sort"

	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/store"
)

// The 7 simple read-only queries (§4: profile and post views, "the bulk of
// the user queries"; Table 7). All are point lookups of O(log n)
// complexity. S1-S3 are the profile-view family, S4-S7 the post-view
// family; the driver chains them with the random walk of §4.

// S1Result is a person profile view.
type S1Result struct {
	FirstName    string
	LastName     string
	Birthday     int64
	LocationIP   string
	Browser      string
	Gender       int
	CreationDate int64
}

// S1 returns the basic profile of a person.
func S1(tx *store.Txn, p ids.ID) (S1Result, bool) {
	props, ok := tx.Props(p)
	if !ok {
		return S1Result{}, false
	}
	return S1Result{
		FirstName:    props.Get(store.PropFirstName).Str(),
		LastName:     props.Get(store.PropLastName).Str(),
		Birthday:     props.Get(store.PropBirthday).Int(),
		LocationIP:   props.Get(store.PropLocationIP).Str(),
		Browser:      props.Get(store.PropBrowserUsed).Str(),
		Gender:       int(props.Get(store.PropGender).Int()),
		CreationDate: props.Get(store.PropCreationDate).Int(),
	}, true
}

// S1View is S1 on the frozen snapshot view.
func S1View(v *store.SnapshotView, p ids.ID) (S1Result, bool) {
	props, ok := v.Props(p)
	if !ok {
		return S1Result{}, false
	}
	return S1Result{
		FirstName:    props.Get(store.PropFirstName).Str(),
		LastName:     props.Get(store.PropLastName).Str(),
		Birthday:     props.Get(store.PropBirthday).Int(),
		LocationIP:   props.Get(store.PropLocationIP).Str(),
		Browser:      props.Get(store.PropBrowserUsed).Str(),
		Gender:       int(props.Get(store.PropGender).Int()),
		CreationDate: props.Get(store.PropCreationDate).Int(),
	}, true
}

// S2 returns the person's 10 most recent messages (id, creation date),
// newest first.
func S2(tx *store.Txn, p ids.ID) []MessageRow {
	msgs := messagesOf(tx, p)
	rows := make([]MessageRow, 0, len(msgs))
	for _, m := range msgs {
		rows = append(rows, MessageRow{Message: m.To, Creator: p, CreationDate: m.Stamp})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].CreationDate != rows[j].CreationDate {
			return rows[i].CreationDate > rows[j].CreationDate
		}
		return rows[i].Message < rows[j].Message
	})
	if len(rows) > 10 {
		rows = rows[:10]
	}
	return rows
}

// S2View is S2 on the frozen snapshot view: the message adjacency is a CSR
// subslice and the newest-10 cut uses a bounded heap.
func S2View(v *store.SnapshotView, p ids.ID) []MessageRow {
	top := newTopK(10, messageRowLess)
	for _, m := range messagesOfView(v, p) {
		top.Push(MessageRow{Message: m.To, Creator: p, CreationDate: m.Stamp})
	}
	return top.Sorted()
}

// S3Row is one friendship of S3.
type S3Row struct {
	Friend       ids.ID
	CreationDate int64
}

// S3 returns all friends of a person with the friendship dates, newest
// friendship first (capped at 20, the paper's profile view cap).
func S3(tx *store.Txn, p ids.ID) []S3Row {
	edges := tx.Out(p, store.EdgeKnows)
	rows := make([]S3Row, 0, len(edges))
	for _, e := range edges {
		rows = append(rows, S3Row{Friend: e.To, CreationDate: e.Stamp})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].CreationDate != rows[j].CreationDate {
			return rows[i].CreationDate > rows[j].CreationDate
		}
		return rows[i].Friend < rows[j].Friend
	})
	if len(rows) > 20 {
		rows = rows[:20]
	}
	return rows
}

// S3View is S3 on the frozen snapshot view.
func S3View(v *store.SnapshotView, p ids.ID) []S3Row {
	top := newTopK(20, func(a, b S3Row) bool {
		if a.CreationDate != b.CreationDate {
			return a.CreationDate > b.CreationDate
		}
		return a.Friend < b.Friend
	})
	for _, e := range v.Out(p, store.EdgeKnows) {
		top.Push(S3Row{Friend: e.To, CreationDate: e.Stamp})
	}
	return top.Sorted()
}

// S4Result is a message content view.
type S4Result struct {
	CreationDate int64
	Content      string // image file name for photos
}

// S4 returns a message's content and creation date.
func S4(tx *store.Txn, m ids.ID) (S4Result, bool) {
	props, ok := tx.Props(m)
	if !ok {
		return S4Result{}, false
	}
	content := props.Get(store.PropContent).Str()
	if content == "" {
		content = props.Get(store.PropImageFile).Str()
	}
	return S4Result{
		CreationDate: props.Get(store.PropCreationDate).Int(),
		Content:      content,
	}, true
}

// S4View is S4 on the frozen snapshot view.
func S4View(v *store.SnapshotView, m ids.ID) (S4Result, bool) {
	props, ok := v.Props(m)
	if !ok {
		return S4Result{}, false
	}
	content := props.Get(store.PropContent).Str()
	if content == "" {
		content = props.Get(store.PropImageFile).Str()
	}
	return S4Result{
		CreationDate: props.Get(store.PropCreationDate).Int(),
		Content:      content,
	}, true
}

// S5Result is a message creator view.
type S5Result struct {
	Creator   ids.ID
	FirstName string
	LastName  string
}

// S5 returns the creator of a message.
func S5(tx *store.Txn, m ids.ID) (S5Result, bool) {
	cs := tx.Out(m, store.EdgeHasCreator)
	if len(cs) == 0 {
		return S5Result{}, false
	}
	return S5Result{
		Creator:   cs[0].To,
		FirstName: tx.Prop(cs[0].To, store.PropFirstName).Str(),
		LastName:  tx.Prop(cs[0].To, store.PropLastName).Str(),
	}, true
}

// S5View is S5 on the frozen snapshot view.
func S5View(v *store.SnapshotView, m ids.ID) (S5Result, bool) {
	cs := v.Out(m, store.EdgeHasCreator)
	if len(cs) == 0 {
		return S5Result{}, false
	}
	return S5Result{
		Creator:   cs[0].To,
		FirstName: v.Prop(cs[0].To, store.PropFirstName).Str(),
		LastName:  v.Prop(cs[0].To, store.PropLastName).Str(),
	}, true
}

// S6Result is a message's forum view.
type S6Result struct {
	Forum     ids.ID
	Title     string
	Moderator ids.ID
}

// S6 returns the forum containing a message (walking replyOf up to the
// root post for comments).
func S6(tx *store.Txn, m ids.ID) (S6Result, bool) {
	cur := m
	for i := 0; i < 64 && cur.Kind() == ids.KindComment; i++ {
		parents := tx.Out(cur, store.EdgeReplyOf)
		if len(parents) == 0 {
			return S6Result{}, false
		}
		cur = parents[0].To
	}
	containers := tx.In(cur, store.EdgeContainerOf)
	if len(containers) == 0 {
		return S6Result{}, false
	}
	forum := containers[0].To
	var moderator ids.ID
	if ms := tx.Out(forum, store.EdgeHasModerator); len(ms) > 0 {
		moderator = ms[0].To
	}
	return S6Result{
		Forum:     forum,
		Title:     tx.Prop(forum, store.PropTitle).Str(),
		Moderator: moderator,
	}, true
}

// S6View is S6 on the frozen snapshot view.
func S6View(v *store.SnapshotView, m ids.ID) (S6Result, bool) {
	cur := m
	for i := 0; i < 64 && cur.Kind() == ids.KindComment; i++ {
		parents := v.Out(cur, store.EdgeReplyOf)
		if len(parents) == 0 {
			return S6Result{}, false
		}
		cur = parents[0].To
	}
	containers := v.In(cur, store.EdgeContainerOf)
	if len(containers) == 0 {
		return S6Result{}, false
	}
	forum := containers[0].To
	var moderator ids.ID
	if ms := v.Out(forum, store.EdgeHasModerator); len(ms) > 0 {
		moderator = ms[0].To
	}
	return S6Result{
		Forum:     forum,
		Title:     v.Prop(forum, store.PropTitle).Str(),
		Moderator: moderator,
	}, true
}

// S7Row is one reply in S7.
type S7Row struct {
	Comment       ids.ID
	Author        ids.ID
	CreationDate  int64
	KnowsOriginal bool // reply author knows the original message author
}

// S7 returns the direct replies to a message, newest first.
func S7(tx *store.Txn, m ids.ID) []S7Row {
	var origAuthor ids.ID
	if cs := tx.Out(m, store.EdgeHasCreator); len(cs) > 0 {
		origAuthor = cs[0].To
	}
	replies := tx.In(m, store.EdgeReplyOf)
	rows := make([]S7Row, 0, len(replies))
	for _, re := range replies {
		var author ids.ID
		if cs := tx.Out(re.To, store.EdgeHasCreator); len(cs) > 0 {
			author = cs[0].To
		}
		rows = append(rows, S7Row{
			Comment:       re.To,
			Author:        author,
			CreationDate:  re.Stamp,
			KnowsOriginal: origAuthor != 0 && author != 0 && isFriend(tx, author, origAuthor),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].CreationDate != rows[j].CreationDate {
			return rows[i].CreationDate > rows[j].CreationDate
		}
		return rows[i].Comment < rows[j].Comment
	})
	return rows
}

// S7View is S7 on the frozen snapshot view. S7 has no LIMIT, so the result
// is sorted in full like the Txn path.
func S7View(v *store.SnapshotView, m ids.ID) []S7Row {
	var origAuthor ids.ID
	if cs := v.Out(m, store.EdgeHasCreator); len(cs) > 0 {
		origAuthor = cs[0].To
	}
	replies := v.In(m, store.EdgeReplyOf)
	rows := make([]S7Row, 0, len(replies))
	for _, re := range replies {
		var author ids.ID
		if cs := v.Out(re.To, store.EdgeHasCreator); len(cs) > 0 {
			author = cs[0].To
		}
		rows = append(rows, S7Row{
			Comment:       re.To,
			Author:        author,
			CreationDate:  re.Stamp,
			KnowsOriginal: origAuthor != 0 && author != 0 && isFriendView(v, author, origAuthor),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].CreationDate != rows[j].CreationDate {
			return rows[i].CreationDate > rows[j].CreationDate
		}
		return rows[i].Comment < rows[j].Comment
	})
	return rows
}
