package workload

import (
	"math"
	"time"

	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/xrand"
)

// Query mix (§4, Table 4): relative frequencies of the complex read-only
// queries, expressed as "one execution per N update operations". The mix
// was calibrated so updates take ~10% of runtime, complex reads ~50% and
// short reads ~40%, with each query type consuming a roughly equal share.

// NumComplexQueries is the number of complex read-only query templates.
const NumComplexQueries = 14

// NumShortQueries is the number of simple read-only query templates.
const NumShortQueries = 7

// Table4Frequencies[q-1] is the number of updates per one execution of
// complex query q, exactly as printed in Table 4 of the paper.
var Table4Frequencies = [NumComplexQueries]int{
	132, 240, 550, 161, 534, 1615, 144, 13, 1425, 217, 133, 238, 57, 144,
}

// mixBasePersons is the network size at which Table 4 was calibrated
// (SF10: 10 GB ≈ 60k persons under our SF calibration; the paper used
// SF10 for the Sparksee run).
const mixBasePersons = 60000

// ScaledFrequency returns the update count per execution of query q
// (1-based) for a network of n persons. Complex reads have complexity
// O(D^k log n) versus O(log n) for updates (§4 "Scaling the workload"), so
// their frequency is reduced — the per-execution interval grows — by the
// logarithmic factor as the dataset grows.
func ScaledFrequency(q int, n int) int {
	f := float64(Table4Frequencies[q-1])
	if n > 1 {
		f *= math.Log(float64(n)) / math.Log(mixBasePersons)
	}
	if f < 1 {
		f = 1
	}
	return int(math.Round(f))
}

// ShortReadMix holds the random-walk parameters of §4: after a complex
// query, its result entities seed a chain of simple reads; the chain
// continues with probability P, decreased by Delta at every step, so it is
// always finite.
type ShortReadMix struct {
	P     float64
	Delta float64
}

// DefaultShortReadMix mirrors the calibration goal (short reads ≈ 40% of
// time): a high initial continuation probability with moderate decay.
var DefaultShortReadMix = ShortReadMix{P: 0.9, Delta: 0.15}

// ShortReadStats counts executed short reads by type (S1..S7 at index
// 0..6).
type ShortReadStats [NumShortQueries]int

// StepTimer observes one executed short read of the walk: kind is the
// query index (0..6 for S1..S7) and d the step's execution latency. The
// driver uses it to attribute per-type latencies without duplicating the
// walk logic.
type StepTimer func(kind int, d time.Duration)

// RunShortReadChain performs the random walk of simple reads seeded by the
// persons and messages a complex query returned ("results of the latter
// queries become input for simple read-only queries, where Profile lookup
// provides an input for Post lookup, and vice versa"). Like the queries it
// chains, the walk is generic over the read path; timer, when non-nil,
// receives every step's latency. The seed slices may be appended to.
func RunShortReadChain[R store.Reader](r R, mix ShortReadMix, rnd *xrand.Rand, persons, messages []ids.ID, timer StepTimer) ShortReadStats {
	var stats ShortReadStats
	p := mix.P
	for step := 0; ; step++ {
		if len(persons) == 0 && len(messages) == 0 {
			return stats
		}
		if !rnd.Bool(p) {
			return stats
		}
		p -= mix.Delta
		if p < 0 {
			p = 0
		}
		kind := -1
		var t0 time.Time
		if timer != nil {
			t0 = time.Now()
		}
		// Alternate between the profile family and the post family, each
		// feeding the other's input pool.
		if len(persons) > 0 && (step%2 == 0 || len(messages) == 0) {
			person := persons[rnd.Intn(len(persons))]
			switch rnd.Intn(3) {
			case 0:
				S1(r, person)
				kind = 0
			case 1:
				for _, row := range S2(r, person) {
					messages = append(messages, row.Message)
				}
				kind = 1
			default:
				for _, row := range S3(r, person) {
					persons = append(persons, row.Friend)
				}
				kind = 2
			}
		} else if len(messages) > 0 {
			msg := messages[rnd.Intn(len(messages))]
			switch rnd.Intn(4) {
			case 0:
				S4(r, msg)
				kind = 3
			case 1:
				if res, ok := S5(r, msg); ok {
					persons = append(persons, res.Creator)
				}
				kind = 4
			case 2:
				if res, ok := S6(r, msg); ok && res.Moderator != 0 {
					persons = append(persons, res.Moderator)
				}
				kind = 5
			default:
				for _, row := range S7(r, msg) {
					if row.Author != 0 {
						persons = append(persons, row.Author)
					}
					messages = append(messages, row.Comment)
				}
				kind = 6
			}
		}
		if kind >= 0 {
			stats[kind]++
			if timer != nil {
				timer(kind, time.Since(t0))
			}
		}
		// Bound the walk's working set.
		if len(persons) > 256 {
			persons = persons[len(persons)-256:]
		}
		if len(messages) > 256 {
			messages = messages[len(messages)-256:]
		}
	}
}
