package workload

import (
	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/xrand"
)

// The complex-query registry: one descriptor per template carrying its
// name, Table 4 frequency, parameter binding against the curated pools and
// execution with result-entity extraction for seeding the short-read walk.
// The driver executes the mix purely through this table — no per-query
// switch exists outside this file.
//
// Each query has ONE generic runner (runQ1..runQ14, wrapping the generic
// query implementation plus seed extraction); the descriptor stores its
// two concrete instantiations so both the driver's serving path and the
// benchmarks execute the same monomorphized code — no interface dispatch
// inside the query hot loops.

// ParamPools holds the curated parameter pools the driver's
// parameter-curation pipeline (§4.1) produces; Bind draws one concrete
// binding from them per execution.
type ParamPools struct {
	// Persons is curated by the Q9 cost profile; PersonsQ5 by the Q5
	// profile (or uniformly, for the Figure 5b ablation).
	Persons   []ids.ID
	PersonsQ5 []ids.ID
	// FirstNames, Tags and TagClasses are value pools for the non-person
	// parameters.
	FirstNames []string
	Tags       []ids.ID
	TagClasses []ids.ID
	// CountryX/CountryY are the Q3 travel countries; NumCountries bounds
	// the Q11 country draw.
	CountryX, CountryY int
	NumCountries       int
	// MaxDate is the simulation end, StartDate the start of the curated
	// query window of WindowMillis length, BeforeYear the Q11 cutoff.
	MaxDate      int64
	StartDate    int64
	WindowMillis int64
	BeforeYear   int
}

// ComplexParams is one bound execution's parameter set; each query reads
// the fields its Bind populated.
type ComplexParams struct {
	Person       ids.ID // start person (all queries)
	Other        ids.ID // second person (Q13, Q14)
	FirstName    string // Q1
	MaxDate      int64  // Q2, Q9
	StartDate    int64  // Q3, Q4 (window start), Q5 (min join date)
	WindowMillis int64  // Q3, Q4
	CountryX     int    // Q3, Q11
	CountryY     int    // Q3
	Tag          ids.ID // Q6
	TagClass     ids.ID // Q12
	Sign         int    // Q10
	BeforeYear   int    // Q11
}

// ComplexResult carries the result entities of one execution, used to seed
// the short-read random walk (§4: "results of the latter queries become
// input for simple read-only queries").
type ComplexResult struct {
	Persons  []ids.ID
	Messages []ids.ID
}

// ComplexSpec describes one complex query template.
type ComplexSpec struct {
	// Num is the 1-based query number; Name its display label.
	Num  int
	Name string
	// Frequency is the Table 4 updates-per-execution figure (scale it with
	// ScaledFrequency).
	Frequency int
	// Bind draws one parameter binding from the curated pools.
	Bind func(pools *ParamPools, rnd *xrand.Rand) ComplexParams
	// RunTxn and RunView are the two concrete instantiations of the
	// query's single generic runner — the driver picks one per read path.
	RunTxn  func(tx *store.Txn, sc *Scratch, p ComplexParams) ComplexResult
	RunView func(v *store.SnapshotView, sc *Scratch, p ComplexParams) ComplexResult
}

// pickID draws one ID from a pool (zero if the pool is empty).
func pickID(pool []ids.ID, rnd *xrand.Rand) ids.ID {
	if len(pool) == 0 {
		return 0
	}
	return pool[rnd.Intn(len(pool))]
}

// The per-query runners: bound parameters in, walk seeds out.

func runQ1[R store.Reader](r R, sc *Scratch, p ComplexParams) ComplexResult {
	var res ComplexResult
	for _, row := range Q1(r, sc, p.Person, p.FirstName) {
		res.Persons = append(res.Persons, row.Person)
	}
	return res
}

func runQ2[R store.Reader](r R, sc *Scratch, p ComplexParams) ComplexResult {
	var res ComplexResult
	for _, row := range Q2(r, sc, p.Person, p.MaxDate) {
		res.Persons = append(res.Persons, row.Creator)
		res.Messages = append(res.Messages, row.Message)
	}
	return res
}

func runQ3[R store.Reader](r R, sc *Scratch, p ComplexParams) ComplexResult {
	var res ComplexResult
	for _, row := range Q3(r, sc, p.Person, p.CountryX, p.CountryY, p.StartDate, p.WindowMillis) {
		res.Persons = append(res.Persons, row.Person)
	}
	return res
}

func runQ4[R store.Reader](r R, sc *Scratch, p ComplexParams) ComplexResult {
	Q4(r, sc, p.Person, p.StartDate, p.WindowMillis)
	return ComplexResult{}
}

func runQ5[R store.Reader](r R, sc *Scratch, p ComplexParams) ComplexResult {
	Q5(r, sc, p.Person, p.StartDate)
	return ComplexResult{}
}

func runQ6[R store.Reader](r R, sc *Scratch, p ComplexParams) ComplexResult {
	Q6(r, sc, p.Person, p.Tag)
	return ComplexResult{}
}

func runQ7[R store.Reader](r R, sc *Scratch, p ComplexParams) ComplexResult {
	var res ComplexResult
	for _, row := range Q7(r, sc, p.Person) {
		res.Persons = append(res.Persons, row.Liker)
		res.Messages = append(res.Messages, row.Message)
	}
	return res
}

func runQ8[R store.Reader](r R, sc *Scratch, p ComplexParams) ComplexResult {
	var res ComplexResult
	for _, row := range Q8(r, sc, p.Person) {
		res.Persons = append(res.Persons, row.Replier)
		res.Messages = append(res.Messages, row.Comment)
	}
	return res
}

func runQ9[R store.Reader](r R, sc *Scratch, p ComplexParams) ComplexResult {
	var res ComplexResult
	for _, row := range Q9(r, sc, p.Person, p.MaxDate) {
		res.Persons = append(res.Persons, row.Creator)
		res.Messages = append(res.Messages, row.Message)
	}
	return res
}

func runQ10[R store.Reader](r R, sc *Scratch, p ComplexParams) ComplexResult {
	var res ComplexResult
	for _, row := range Q10(r, sc, p.Person, p.Sign) {
		res.Persons = append(res.Persons, row.Person)
	}
	return res
}

func runQ11[R store.Reader](r R, sc *Scratch, p ComplexParams) ComplexResult {
	var res ComplexResult
	for _, row := range Q11(r, sc, p.Person, p.CountryX, p.BeforeYear) {
		res.Persons = append(res.Persons, row.Person)
	}
	return res
}

func runQ12[R store.Reader](r R, sc *Scratch, p ComplexParams) ComplexResult {
	var res ComplexResult
	for _, row := range Q12(r, sc, p.Person, p.TagClass) {
		res.Persons = append(res.Persons, row.Person)
	}
	return res
}

func runQ13[R store.Reader](r R, sc *Scratch, p ComplexParams) ComplexResult {
	Q13(r, sc, p.Person, p.Other)
	return ComplexResult{}
}

func runQ14[R store.Reader](r R, sc *Scratch, p ComplexParams) ComplexResult {
	Q14(r, sc, p.Person, p.Other)
	return ComplexResult{}
}

// Complex[q-1] is the descriptor of complex query q.
var Complex = [NumComplexQueries]ComplexSpec{
	{
		Num: 1, Name: "Q1", Frequency: 132,
		Bind: func(pools *ParamPools, rnd *xrand.Rand) ComplexParams {
			p := ComplexParams{Person: pickID(pools.Persons, rnd)}
			if len(pools.FirstNames) > 0 {
				p.FirstName = pools.FirstNames[rnd.Intn(len(pools.FirstNames))]
			}
			return p
		},
		RunTxn: runQ1[*store.Txn], RunView: runQ1[*store.SnapshotView],
	},
	{
		Num: 2, Name: "Q2", Frequency: 240,
		Bind: func(pools *ParamPools, rnd *xrand.Rand) ComplexParams {
			return ComplexParams{Person: pickID(pools.Persons, rnd), MaxDate: pools.MaxDate}
		},
		RunTxn: runQ2[*store.Txn], RunView: runQ2[*store.SnapshotView],
	},
	{
		Num: 3, Name: "Q3", Frequency: 550,
		Bind: func(pools *ParamPools, rnd *xrand.Rand) ComplexParams {
			return ComplexParams{
				Person:       pickID(pools.Persons, rnd),
				CountryX:     pools.CountryX,
				CountryY:     pools.CountryY,
				StartDate:    pools.StartDate,
				WindowMillis: pools.WindowMillis,
			}
		},
		RunTxn: runQ3[*store.Txn], RunView: runQ3[*store.SnapshotView],
	},
	{
		Num: 4, Name: "Q4", Frequency: 161,
		Bind: func(pools *ParamPools, rnd *xrand.Rand) ComplexParams {
			return ComplexParams{
				Person:       pickID(pools.Persons, rnd),
				StartDate:    pools.StartDate,
				WindowMillis: pools.WindowMillis,
			}
		},
		RunTxn: runQ4[*store.Txn], RunView: runQ4[*store.SnapshotView],
	},
	{
		Num: 5, Name: "Q5", Frequency: 534,
		Bind: func(pools *ParamPools, rnd *xrand.Rand) ComplexParams {
			pool := pools.PersonsQ5
			if len(pool) == 0 {
				pool = pools.Persons
			}
			return ComplexParams{Person: pickID(pool, rnd), StartDate: pools.StartDate}
		},
		RunTxn: runQ5[*store.Txn], RunView: runQ5[*store.SnapshotView],
	},
	{
		Num: 6, Name: "Q6", Frequency: 1615,
		Bind: func(pools *ParamPools, rnd *xrand.Rand) ComplexParams {
			return ComplexParams{Person: pickID(pools.Persons, rnd), Tag: pickID(pools.Tags, rnd)}
		},
		RunTxn: runQ6[*store.Txn], RunView: runQ6[*store.SnapshotView],
	},
	{
		Num: 7, Name: "Q7", Frequency: 144,
		Bind: func(pools *ParamPools, rnd *xrand.Rand) ComplexParams {
			return ComplexParams{Person: pickID(pools.Persons, rnd)}
		},
		RunTxn: runQ7[*store.Txn], RunView: runQ7[*store.SnapshotView],
	},
	{
		Num: 8, Name: "Q8", Frequency: 13,
		Bind: func(pools *ParamPools, rnd *xrand.Rand) ComplexParams {
			return ComplexParams{Person: pickID(pools.Persons, rnd)}
		},
		RunTxn: runQ8[*store.Txn], RunView: runQ8[*store.SnapshotView],
	},
	{
		Num: 9, Name: "Q9", Frequency: 1425,
		Bind: func(pools *ParamPools, rnd *xrand.Rand) ComplexParams {
			return ComplexParams{Person: pickID(pools.Persons, rnd), MaxDate: pools.MaxDate}
		},
		RunTxn: runQ9[*store.Txn], RunView: runQ9[*store.SnapshotView],
	},
	{
		Num: 10, Name: "Q10", Frequency: 217,
		Bind: func(pools *ParamPools, rnd *xrand.Rand) ComplexParams {
			return ComplexParams{Person: pickID(pools.Persons, rnd), Sign: rnd.Intn(12)}
		},
		RunTxn: runQ10[*store.Txn], RunView: runQ10[*store.SnapshotView],
	},
	{
		Num: 11, Name: "Q11", Frequency: 133,
		Bind: func(pools *ParamPools, rnd *xrand.Rand) ComplexParams {
			n := pools.NumCountries
			if n <= 0 {
				n = 1
			}
			return ComplexParams{
				Person:     pickID(pools.Persons, rnd),
				CountryX:   rnd.Intn(n),
				BeforeYear: pools.BeforeYear,
			}
		},
		RunTxn: runQ11[*store.Txn], RunView: runQ11[*store.SnapshotView],
	},
	{
		Num: 12, Name: "Q12", Frequency: 238,
		Bind: func(pools *ParamPools, rnd *xrand.Rand) ComplexParams {
			return ComplexParams{Person: pickID(pools.Persons, rnd), TagClass: pickID(pools.TagClasses, rnd)}
		},
		RunTxn: runQ12[*store.Txn], RunView: runQ12[*store.SnapshotView],
	},
	{
		Num: 13, Name: "Q13", Frequency: 57,
		Bind: func(pools *ParamPools, rnd *xrand.Rand) ComplexParams {
			return ComplexParams{Person: pickID(pools.Persons, rnd), Other: pickID(pools.Persons, rnd)}
		},
		RunTxn: runQ13[*store.Txn], RunView: runQ13[*store.SnapshotView],
	},
	{
		Num: 14, Name: "Q14", Frequency: 144,
		Bind: func(pools *ParamPools, rnd *xrand.Rand) ComplexParams {
			return ComplexParams{Person: pickID(pools.Persons, rnd), Other: pickID(pools.Persons, rnd)}
		},
		RunTxn: runQ14[*store.Txn], RunView: runQ14[*store.SnapshotView],
	},
}
