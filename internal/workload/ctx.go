package workload

import (
	"context"

	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/xrand"
)

// Context-aware run hooks for the serving layer: the same monomorphized
// view-path queries as RunView, executed over a cancellable view derived
// with store.SnapshotView.WithCancel so a request whose deadline expires
// mid-scan unwinds cooperatively instead of running to completion. The
// hooks return store.ErrQueryCanceled in that case (converted from the
// cooperative unwind by store.CatchCanceled); in-process callers that own
// their deadlines keep using RunView directly and pay nothing.

// RunViewCtx executes the complex query on the view path under ctx:
// cancellation or deadline expiry aborts the scan at the next cooperative
// check and returns store.ErrQueryCanceled.
func (cs *ComplexSpec) RunViewCtx(ctx context.Context, v *store.SnapshotView, sc *Scratch, p ComplexParams) (res ComplexResult, err error) {
	defer store.CatchCanceled(&err)
	res = cs.RunView(v.WithCancel(ctx), sc, p)
	return res, err
}

// RunShortReadChainCtx is RunShortReadChain on a cancellable view: the
// walk aborts with store.ErrQueryCanceled at the next cooperative check
// once ctx is done (the partial walk's stats are discarded — a canceled
// request reports no work).
func RunShortReadChainCtx(ctx context.Context, v *store.SnapshotView, mix ShortReadMix, rnd *xrand.Rand, persons, messages []ids.ID, timer StepTimer) (stats ShortReadStats, err error) {
	cv := v.WithCancel(ctx)
	defer store.CatchCanceled(&err)
	stats = RunShortReadChain(cv, mix, rnd, persons, messages, timer)
	return stats, err
}
