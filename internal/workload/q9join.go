package workload

import (
	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/store"
)

// Set-at-a-time (Virtuoso-style) formulation of Query 9, built from
// explicit join operators so the Figure 4 join-type choice can be ablated.
// The intended plan of §3:
//
//	sort( hash-or-INL ⋈3 (post)
//	      ( INL ⋈2 (person)
//	        ( INL ⋈1 (friends) friends(start) ) ) )
//
// ⋈1 expands friends to friends-of-friends, ⋈2 deduplicates into persons,
// ⋈3 fetches their messages before the date. The paper reports ≈50%
// penalty in HyPer when ⋈1 uses hash instead of index nested loop; our
// ablation measures the analogous wrong-side materialisation cost.

// JoinAlgo selects the physical operator for a join level.
type JoinAlgo int

// Join algorithm choices.
const (
	// JoinINL probes the adjacency index per outer tuple (index nested
	// loop) — correct when the outer side is small.
	JoinINL JoinAlgo = iota
	// JoinHash builds a hash table over the *entire* candidate inner
	// relation (all persons' friendships / all messages), then probes —
	// the wrong choice when the outer side is tiny.
	JoinHash
)

// Q9Plan selects the operators for the two cardinality-sensitive joins.
type Q9Plan struct {
	FriendExpand JoinAlgo // ⋈1/⋈2: friends -> friends-of-friends
	MessageJoin  JoinAlgo // ⋈3: persons -> messages before date
}

// Q9Join executes Query 9 with explicit operators per plan, generic over
// the read path like every other query. The INL sides probe the adjacency
// (CSR subslices with a bitset visited set on the view path); the
// deliberately mis-planned hash sides materialise their build tables on
// either path — that materialisation cost is the ablation's point. Results
// match Q9 exactly; only the physical execution differs.
func Q9Join[R store.Reader](r R, sc *Scratch, start ids.ID, maxDate int64, plan Q9Plan) []MessageRow {
	sc.begin(r)
	var env []ids.ID
	switch plan.FriendExpand {
	case JoinINL:
		// Probe each friend's adjacency: |friends| index lookups.
		env, _ = friendsAndFoF(r, sc, start)
	case JoinHash:
		friends := append([]ids.ID(nil), friendsOf(r, sc, start)...)
		// Wrong plan: build a hash table over the full knows relation
		// (scan every person), then probe with the friend list.
		build := map[ids.ID][]ids.ID{}
		for _, p := range r.NodesOfKind(ids.KindPerson) {
			for _, e := range r.Out(p, store.EdgeKnows) {
				build[p] = append(build[p], e.To)
			}
		}
		seen := map[ids.ID]bool{start: true}
		for _, f := range friends {
			if !seen[f] {
				seen[f] = true
				env = append(env, f)
			}
		}
		for _, f := range friends {
			for _, ff := range build[f] {
				if !seen[ff] {
					seen[ff] = true
					env = append(env, ff)
				}
			}
		}
	}

	switch plan.MessageJoin {
	case JoinINL:
		return topMessagesOf(r, env, maxDate, 20)
	case JoinHash:
		// Hash join over the message side: scan all posts and comments
		// once (no per-person index available in the paper's plan), hash
		// the environment, filter. This is the *correct* choice in the
		// paper's Figure 4 for the top join because its inputs are large;
		// in our engine the adjacency index exists, so this path measures
		// the full-scan alternative.
		inEnv := make(map[ids.ID]bool, len(env))
		for _, p := range env {
			inEnv[p] = true
		}
		top := newTopK(20, messageRowLess)
		scan := func(kind ids.Kind) {
			for _, m := range r.NodesOfKind(kind) {
				created := r.Prop(m, store.PropCreationDate).Int()
				if created > maxDate {
					continue
				}
				cs := r.Out(m, store.EdgeHasCreator)
				if len(cs) == 0 || !inEnv[cs[0].To] {
					continue
				}
				top.Push(MessageRow{Message: m, Creator: cs[0].To, CreationDate: created})
			}
		}
		scan(ids.KindPost)
		scan(ids.KindComment)
		return top.Sorted()
	}
	return nil
}
