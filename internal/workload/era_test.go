package workload

import (
	"testing"

	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/store"
)

// Era-awareness regression tests for Scratch: ordinal bitsets survive cheap
// view refreshes (same era) and are hard-reset across era bumps (full
// recompactions reassign every ordinal).

// eraTestGraph commits a small knows clique and returns its persons.
func eraTestGraph(t *testing.T) (*store.Store, []ids.ID) {
	t.Helper()
	st := store.New()
	ps := make([]ids.ID, 4)
	tx := st.Begin()
	for i := range ps {
		ps[i] = ids.Compose(ids.KindPerson, 900, uint32(i))
		if err := tx.CreateNode(ps[i], store.Props{{Key: store.PropFirstName, Val: store.String("p")}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < len(ps); i++ {
		_ = tx.AddKnows(ps[0], ps[i], int64(i))
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return st, ps
}

func TestScratchSurvivesRefresh(t *testing.T) {
	st, ps := eraTestGraph(t)
	v1 := st.CurrentView()
	sc := NewScratch()
	TwoHopEnv(v1, sc, ps[0])
	if sc.Era() != v1.Era() {
		t.Fatalf("scratch era %d, view era %d", sc.Era(), v1.Era())
	}
	pooled := len(sc.sets)

	// A sparse commit refreshes the cached view within the same era.
	tx := st.Begin()
	p := ids.Compose(ids.KindPerson, 901, 0)
	_ = tx.CreateNode(p, nil)
	_ = tx.AddKnows(ps[0], p, 99)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	v2 := st.CurrentView()
	if v2.Era() != v1.Era() {
		t.Fatalf("sparse commit bumped the era: %d -> %d", v1.Era(), v2.Era())
	}
	env := TwoHopEnv(v2, sc, ps[0])
	if len(env) != len(ps) { // 3 old friends + the new one
		t.Fatalf("2-hop env on refreshed view: %d persons, want %d", len(env), len(ps))
	}
	if len(sc.sets) != pooled {
		t.Fatalf("refresh rebind reallocated the set pool: %d -> %d", pooled, len(sc.sets))
	}
	if sc.Era() != v2.Era() {
		t.Fatalf("scratch era diverged: %d vs %d", sc.Era(), v2.Era())
	}
}

func TestScratchResetsOnEraBump(t *testing.T) {
	st, ps := eraTestGraph(t)
	v1 := st.CurrentView()
	sc := NewScratch()
	TwoHopEnv(v1, sc, ps[0])

	// Dirty an extra pooled set the next query will not re-bind: if its
	// bits survived an era bump they would alias reassigned ordinals.
	extra := sc.newSeen()
	extra.tryMark(ps[0])
	if extra.bits.Count() == 0 {
		t.Fatal("setup: mark did not stick")
	}

	// Force a recompaction on the next advance.
	st.SetViewCompactThreshold(0)
	tx := st.Begin()
	_ = tx.CreateNode(ids.Compose(ids.KindPerson, 902, 0), nil)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	v2 := st.CurrentView()
	if v2.Era() == v1.Era() {
		t.Fatal("forced recompaction kept the era")
	}

	TwoHopEnv(v2, sc, ps[0])
	if sc.Era() != v2.Era() {
		t.Fatalf("scratch era not advanced: %d vs %d", sc.Era(), v2.Era())
	}
	// Every pooled set — bound by this query or not — must have been
	// invalidated at the era boundary.
	for i, s := range sc.sets[sc.used:] {
		if s.v != nil || s.bits.Count() != 0 {
			t.Fatalf("pooled set %d kept stale ordinal state across the era bump", sc.used+i)
		}
	}
}
