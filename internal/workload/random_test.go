package workload

import (
	"fmt"
	"testing"

	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/xrand"
)

// Randomised-graph equivalence: instead of the generator's correlated SNB
// dataset, grow a random schema-shaped graph one committed transaction at
// a time and re-check, after every commit, that all queries agree between
// the two Reader instantiations. This probes epoch tracking and visibility
// edge cases the well-formed generated data cannot reach (dangling reply
// targets, memberless forums, persons without properties, ...).

// randGraph accumulates the random graph's entity population.
type randGraph struct {
	persons  []ids.ID
	messages []ids.ID // posts and comments
	forums   []ids.ID
	tags     []ids.ID
}

var randFirstNames = []string{"Ada", "Bob", "Eve"}

// loadRandomDimensions commits the dimension side of the schema: places,
// organisations, a small tag-class tree and tags.
func loadRandomDimensions(t *testing.T, st *store.Store, r *xrand.Rand, g *randGraph) {
	t.Helper()
	tx := st.Begin()
	for i := 0; i < 4; i++ {
		place := ids.DimensionID(ids.KindPlace, uint32(i))
		if err := tx.CreateNode(place, store.Props{{Key: store.PropName, Val: store.String(fmt.Sprintf("place%d", i))}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		org := ids.DimensionID(ids.KindOrganisation, uint32(i))
		if err := tx.CreateNode(org, store.Props{{Key: store.PropName, Val: store.String(fmt.Sprintf("org%d", i))}}); err != nil {
			t.Fatal(err)
		}
		_ = tx.AddEdge(org, store.EdgeIsLocatedIn, ids.DimensionID(ids.KindPlace, uint32(i%4)), 0)
	}
	root := ids.DimensionID(ids.KindTagClass, 0)
	if err := tx.CreateNode(root, store.Props{{Key: store.PropName, Val: store.String("Thing")}}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		class := ids.DimensionID(ids.KindTagClass, uint32(i))
		if err := tx.CreateNode(class, store.Props{{Key: store.PropName, Val: store.String(fmt.Sprintf("class%d", i))}}); err != nil {
			t.Fatal(err)
		}
		_ = tx.AddEdge(class, store.EdgeIsSubclassOf, root, 0)
	}
	for i := 0; i < 8; i++ {
		tag := ids.DimensionID(ids.KindTag, uint32(i))
		if err := tx.CreateNode(tag, store.Props{{Key: store.PropName, Val: store.String(fmt.Sprintf("tag%d", i))}}); err != nil {
			t.Fatal(err)
		}
		_ = tx.AddEdge(tag, store.EdgeHasType, ids.DimensionID(ids.KindTagClass, uint32(1+i%3)), 0)
		g.tags = append(g.tags, tag)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// randomWorkloadStep applies one random committed transaction: persons with
// interests and jobs, knows edges, an occasional forum, posts, reply
// comments and likes.
func randomWorkloadStep(t *testing.T, st *store.Store, r *xrand.Rand, g *randGraph, step int) {
	t.Helper()
	tx := st.Begin()
	now := int64(step) * 100000
	for i := 0; i < 1+r.Intn(2); i++ {
		p := ids.Compose(ids.KindPerson, int64(step), uint32(i))
		props := store.Props{
			{Key: store.PropFirstName, Val: store.String(randFirstNames[r.Intn(len(randFirstNames))])},
			{Key: store.PropLastName, Val: store.String(fmt.Sprintf("L%d", r.Intn(5)))},
			{Key: store.PropBirthday, Val: store.Int64(int64(r.Intn(1<<30)) * 1000)},
			{Key: store.PropCountry, Val: store.Int64(int64(r.Intn(4)))},
			{Key: store.PropCreationDate, Val: store.Int64(now)},
		}
		if err := tx.CreateNode(p, props); err != nil {
			t.Fatal(err)
		}
		_ = tx.AddEdge(p, store.EdgeIsLocatedIn, ids.DimensionID(ids.KindPlace, uint32(r.Intn(4))), 0)
		for k := 0; k < 1+r.Intn(2); k++ {
			_ = tx.AddEdge(p, store.EdgeHasInterest, g.tags[r.Intn(len(g.tags))], 0)
		}
		_ = tx.AddEdge(p, store.EdgeWorkAt, ids.DimensionID(ids.KindOrganisation, uint32(r.Intn(6))), int64(2000+r.Intn(20)))
		_ = tx.AddEdge(p, store.EdgeStudyAt, ids.DimensionID(ids.KindOrganisation, uint32(r.Intn(6))), int64(1995+r.Intn(15)))
		g.persons = append(g.persons, p)
	}
	for i := 0; i < 3; i++ {
		a := g.persons[r.Intn(len(g.persons))]
		b := g.persons[r.Intn(len(g.persons))]
		if a != b {
			_ = tx.AddKnows(a, b, now+int64(i))
		}
	}
	if step%2 == 0 {
		f := ids.Compose(ids.KindForum, int64(step), 0)
		if err := tx.CreateNode(f, store.Props{
			{Key: store.PropTitle, Val: store.String(fmt.Sprintf("forum%d", step))},
			{Key: store.PropCreationDate, Val: store.Int64(now)},
		}); err != nil {
			t.Fatal(err)
		}
		_ = tx.AddEdge(f, store.EdgeHasModerator, g.persons[r.Intn(len(g.persons))], 0)
		for k := 0; k < 2; k++ {
			_ = tx.AddEdge(f, store.EdgeHasMember, g.persons[r.Intn(len(g.persons))], now+int64(k))
		}
		g.forums = append(g.forums, f)
	}
	for i := 0; i < 2; i++ {
		post := ids.Compose(ids.KindPost, int64(step), uint32(i))
		created := now + int64(10+i)
		if err := tx.CreateNode(post, store.Props{
			{Key: store.PropCreationDate, Val: store.Int64(created)},
			{Key: store.PropContent, Val: store.String(fmt.Sprintf("post %d/%d", step, i))},
			{Key: store.PropCountry, Val: store.Int64(int64(r.Intn(4)))},
		}); err != nil {
			t.Fatal(err)
		}
		_ = tx.AddEdge(post, store.EdgeHasCreator, g.persons[r.Intn(len(g.persons))], created)
		if len(g.forums) > 0 {
			_ = tx.AddEdge(g.forums[r.Intn(len(g.forums))], store.EdgeContainerOf, post, created)
		}
		for k := 0; k < 1+r.Intn(2); k++ {
			_ = tx.AddEdge(post, store.EdgeHasTag, g.tags[r.Intn(len(g.tags))], 0)
		}
		g.messages = append(g.messages, post)
	}
	for i := 0; i < 1+r.Intn(2); i++ {
		c := ids.Compose(ids.KindComment, int64(step), uint32(i))
		created := now + int64(50+i)
		if err := tx.CreateNode(c, store.Props{
			{Key: store.PropCreationDate, Val: store.Int64(created)},
			{Key: store.PropContent, Val: store.String(fmt.Sprintf("re %d/%d", step, i))},
			{Key: store.PropCountry, Val: store.Int64(int64(r.Intn(4)))},
		}); err != nil {
			t.Fatal(err)
		}
		_ = tx.AddEdge(c, store.EdgeReplyOf, g.messages[r.Intn(len(g.messages))], created)
		_ = tx.AddEdge(c, store.EdgeHasCreator, g.persons[r.Intn(len(g.persons))], created)
		if r.Bool(0.5) {
			_ = tx.AddEdge(c, store.EdgeHasTag, g.tags[r.Intn(len(g.tags))], 0)
		}
		g.messages = append(g.messages, c)
	}
	for i := 0; i < 2; i++ {
		_ = tx.AddEdge(g.persons[r.Intn(len(g.persons))], store.EdgeLikes, g.messages[r.Intn(len(g.messages))], now+int64(80+i))
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestQueriesAgreeOnRandomGraphs grows random graphs with interleaved
// commits and asserts full query equivalence at every epoch.
func TestQueriesAgreeOnRandomGraphs(t *testing.T) {
	for seed := uint64(1); seed <= 2; seed++ {
		r := xrand.New(seed)
		st := store.New()
		g := &randGraph{}
		loadRandomDimensions(t, st, r, g)
		for step := 1; step <= 8; step++ {
			randomWorkloadStep(t, st, r, g, step)
			persons := g.persons
			if len(persons) > 10 {
				persons = persons[len(persons)-10:]
			}
			messages := g.messages
			if len(messages) > 10 {
				messages = messages[len(messages)-10:]
			}
			assertQueriesAgree(t, st, persons, messages, 1<<60)
		}
	}
}
