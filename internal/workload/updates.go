package workload

import (
	"fmt"

	"ldbcsnb/internal/schema"
	"ldbcsnb/internal/store"
)

// The 8 transactional updates (U1-U8 of Table 9). Each runs as one ACID
// transaction against the store; conflicts surface as store.ErrConflict /
// store.ErrExists and are the caller's to retry or report.

// ApplyUpdate executes one update-stream operation in its own transaction.
func ApplyUpdate(st *store.Store, u *schema.Update) error {
	tx := st.Begin()
	var err error
	switch u.Type {
	case schema.UpdateAddPerson:
		err = schema.AddPerson(tx, u.Person)
	case schema.UpdateAddLikePost, schema.UpdateAddLikeComment:
		err = tx.AddEdge(u.Like.Person, store.EdgeLikes, u.Like.Message, u.Like.CreationDate)
	case schema.UpdateAddForum:
		err = schema.AddForum(tx, u.Forum)
	case schema.UpdateAddMembership:
		err = tx.AddEdge(u.Membership.Forum, store.EdgeHasMember, u.Membership.Person, u.Membership.JoinDate)
	case schema.UpdateAddPost:
		err = schema.AddPost(tx, u.Post)
	case schema.UpdateAddComment:
		err = schema.AddComment(tx, u.Comment)
	case schema.UpdateAddFriendship:
		err = tx.AddKnows(u.Friendship.A, u.Friendship.B, u.Friendship.CreationDate)
	default:
		err = fmt.Errorf("workload: unknown update type %d", u.Type)
	}
	if err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}
