package algo

import (
	"math"
	"sync"
	"testing"

	"ldbcsnb/internal/datagen"
	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/schema"
	"ldbcsnb/internal/store"
)

var (
	gOnce sync.Once
	gVal  *Graph
	gData *schema.Dataset
)

func testGraph(t *testing.T) (*Graph, *schema.Dataset) {
	t.Helper()
	gOnce.Do(func() {
		out := datagen.Generate(datagen.Config{Seed: 31, Persons: 250, Workers: 2})
		st := store.New()
		schema.RegisterIndexes(st)
		if err := schema.LoadDimensions(st); err != nil {
			panic(err)
		}
		if err := schema.Load(st, out.Data); err != nil {
			panic(err)
		}
		gVal = ExtractKnows(st)
		gData = out.Data
	})
	return gVal, gData
}

func TestExtractMatchesDataset(t *testing.T) {
	g, d := testGraph(t)
	if g.N() != len(d.Persons) {
		t.Fatalf("vertices %d, persons %d", g.N(), len(d.Persons))
	}
	// Total directed adjacency entries = 2 * friendships.
	if len(g.Targets) != 2*len(d.Knows) {
		t.Fatalf("adjacency %d, knows %d", len(g.Targets), len(d.Knows))
	}
	// Symmetry: w in N(v) <=> v in N(w).
	for v := int32(0); v < int32(g.N()); v++ {
		for _, w := range g.Neighbours(v) {
			found := false
			for _, x := range g.Neighbours(w) {
				if x == v {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("asymmetric edge %d-%d", v, w)
			}
		}
	}
}

func TestBFSAgainstDatasetDistances(t *testing.T) {
	g, d := testGraph(t)
	src := d.Persons[0].ID
	dist := g.BFS(src)
	if dist[g.Index[src]] != 0 {
		t.Fatal("source distance")
	}
	// Triangle inequality over edges: |d(v)-d(w)| <= 1 for every edge.
	for v := int32(0); v < int32(g.N()); v++ {
		for _, w := range g.Neighbours(v) {
			dv, dw := dist[v], dist[w]
			if dv >= 0 && dw >= 0 && dv-dw > 1 {
				t.Fatalf("BFS levels inconsistent: %d vs %d", dv, dw)
			}
			if (dv < 0) != (dw < 0) {
				t.Fatal("reachability must be edge-closed")
			}
		}
	}
}

func TestBFSUnknownSource(t *testing.T) {
	g, _ := testGraph(t)
	dist := g.BFS(ids.Compose(ids.KindPerson, 1<<39, 99))
	for _, v := range dist {
		if v != -1 {
			t.Fatal("unknown source should reach nothing")
		}
	}
}

func TestPageRankProperties(t *testing.T) {
	g, _ := testGraph(t)
	pr := g.PageRank(0.85, 1e-9, 100)
	sum := 0.0
	for _, v := range pr {
		if v <= 0 {
			t.Fatal("non-positive rank")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("ranks sum to %v", sum)
	}
	// Rank correlates with degree on friendship graphs: the max-degree
	// vertex must rank above the median vertex.
	maxV, maxD := int32(0), -1
	for v := int32(0); v < int32(g.N()); v++ {
		if d := g.Degree(v); d > maxD {
			maxV, maxD = v, d
		}
	}
	med := pr[g.N()/2]
	if pr[maxV] <= med {
		t.Fatalf("hub rank %v not above median %v", pr[maxV], med)
	}
}

func TestPageRankEmptyGraph(t *testing.T) {
	var g Graph
	if got := g.PageRank(0.85, 1e-6, 10); got != nil {
		t.Fatal("empty graph")
	}
}

func TestClusteringCoefficient(t *testing.T) {
	g, _ := testGraph(t)
	local, avg := g.ClusteringCoefficient()
	if len(local) != g.N() {
		t.Fatal("length")
	}
	for _, c := range local {
		if c < 0 || c > 1 {
			t.Fatalf("coefficient out of range: %v", c)
		}
	}
	// Homophily must create far more triangles than a random graph with
	// the same density: ER expectation is mean degree / n.
	meanDeg := float64(len(g.Targets)) / float64(g.N())
	er := meanDeg / float64(g.N())
	if avg < 3*er {
		t.Fatalf("clustering %v not above random expectation %v", avg, er)
	}
}

func TestCommunitiesNonTrivial(t *testing.T) {
	g, _ := testGraph(t)
	labels, count := g.Communities(50)
	if len(labels) != g.N() {
		t.Fatal("labels length")
	}
	if count <= 0 || count >= g.N() {
		t.Fatalf("degenerate community count %d of %d", count, g.N())
	}
	// Deterministic.
	labels2, count2 := g.Communities(50)
	if count != count2 {
		t.Fatal("community detection not deterministic")
	}
	for i := range labels {
		if labels[i] != labels2[i] {
			t.Fatal("labels not deterministic")
		}
	}
}

func TestConnectedComponentsGiant(t *testing.T) {
	g, _ := testGraph(t)
	labels, count := g.ConnectedComponents()
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	giant := 0
	for _, s := range sizes {
		if s > giant {
			giant = s
		}
	}
	// §2: the persons form (nearly) one connected component.
	if float64(giant) < 0.8*float64(g.N()) {
		t.Fatalf("giant component %d of %d too small", giant, g.N())
	}
}

func TestTopK(t *testing.T) {
	vals := []float64{0.1, 0.9, 0.5, 0.9, 0.2}
	top := TopK(vals, 2)
	if len(top) != 2 || vals[top[0]] != 0.9 || vals[top[1]] != 0.9 {
		t.Fatalf("top = %v", top)
	}
	if got := TopK(vals, 99); len(got) != len(vals) {
		t.Fatal("k clamp")
	}
}
