// Package algo implements the SNB-Algorithms workload sketched in §1 of
// the paper: "a handful of often-used graph analysis algorithms, including
// PageRank, Community Detection, Clustering and Breadth First Search",
// running on the same dataset as the Interactive workload. The paper marks
// this workload as under construction; the algorithm set implemented here
// follows that list, executed over the Knows subgraph extracted from the
// store (one snapshot transaction).
//
// The paper also notes the generator is tuned so the graph "contains
// communities, and clusters comparable to ... real data", which these
// algorithms make observable: community detection finds non-trivial
// communities and the clustering coefficient is far above the random-graph
// expectation (tested in algo_test.go).
package algo

import (
	"math"
	"sort"

	"ldbcsnb/internal/bitset"
	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/store"
)

// Graph is an immutable compressed-adjacency snapshot of the friendship
// (Knows) subgraph, the input representation for all algorithms.
type Graph struct {
	// IDs maps dense vertex indices back to person IDs (sorted).
	IDs []ids.ID
	// Index maps person IDs to dense vertex indices.
	Index map[ids.ID]int32
	// Offsets/Targets form a CSR adjacency: neighbours of vertex v are
	// Targets[Offsets[v]:Offsets[v+1]].
	Offsets []int32
	Targets []int32
}

// ExtractKnows snapshots the friendship graph from the store's frozen
// snapshot view: the view's CSR adjacency is already lock-free and
// allocation-free to iterate, so extraction is two passes over slab
// subslices with no intermediate per-vertex lists. It piggybacks on the
// store's cached view — free when the store is also serving reads (the
// view exists or will be reused); an analytics-only caller pays one full
// compaction, which covers all edge types, not just knows.
func ExtractKnows(st *store.Store) *Graph {
	return ExtractKnowsView(st.CurrentView())
}

// ExtractKnowsView builds the algorithm graph from an existing view.
func ExtractKnowsView(v *store.SnapshotView) *Graph {
	g := &Graph{Index: make(map[ids.ID]int32)}
	persons := v.NodesOfKind(ids.KindPerson)
	g.IDs = make([]ids.ID, len(persons))
	copy(g.IDs, persons)
	sort.Slice(g.IDs, func(i, j int) bool { return g.IDs[i] < g.IDs[j] })
	for i, id := range g.IDs {
		g.Index[id] = int32(i)
	}
	g.Offsets = make([]int32, len(g.IDs)+1)
	// First pass: degrees (only edges to persons in the extracted set).
	total := int32(0)
	for i, id := range g.IDs {
		g.Offsets[i] = total
		for _, e := range v.Out(id, store.EdgeKnows) {
			if _, ok := g.Index[e.To]; ok {
				total++
			}
		}
	}
	g.Offsets[len(g.IDs)] = total
	// Second pass: fill targets.
	g.Targets = make([]int32, 0, total)
	for _, id := range g.IDs {
		for _, e := range v.Out(id, store.EdgeKnows) {
			if j, ok := g.Index[e.To]; ok {
				g.Targets = append(g.Targets, j)
			}
		}
	}
	return g
}

// N returns the vertex count.
func (g *Graph) N() int { return len(g.IDs) }

// Neighbours returns the adjacency list of vertex v.
func (g *Graph) Neighbours(v int32) []int32 {
	return g.Targets[g.Offsets[v]:g.Offsets[v+1]]
}

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int32) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// BFS computes hop distances from a source person (the Graph-500-style
// kernel the paper mentions). Unreachable vertices get -1.
func (g *Graph) BFS(source ids.ID) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = -1
	}
	s, ok := g.Index[source]
	if !ok {
		return dist
	}
	dist[s] = 0
	queue := []int32{s}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbours(v) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// PageRank runs the classic power iteration with damping d until the L1
// delta drops below eps or maxIter rounds elapse, returning per-vertex
// scores summing to ~1.
func (g *Graph) PageRank(d float64, eps float64, maxIter int) []float64 {
	n := g.N()
	if n == 0 {
		return nil
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	base := (1 - d) / float64(n)
	for it := 0; it < maxIter; it++ {
		dangling := 0.0
		for i := range next {
			next[i] = 0
		}
		for v := 0; v < n; v++ {
			deg := g.Degree(int32(v))
			if deg == 0 {
				dangling += rank[v]
				continue
			}
			share := rank[v] / float64(deg)
			for _, w := range g.Neighbours(int32(v)) {
				next[w] += share
			}
		}
		spread := dangling / float64(n)
		delta := 0.0
		for i := range next {
			next[i] = base + d*(next[i]+spread)
			delta += math.Abs(next[i] - rank[i])
		}
		rank, next = next, rank
		if delta < eps {
			break
		}
	}
	return rank
}

// ClusteringCoefficient returns the per-vertex local clustering
// coefficient and the graph average. On SNB graphs the average must be far
// above the Erdős–Rényi expectation — the homophily correlations of §2.3
// create triangles.
func (g *Graph) ClusteringCoefficient() (local []float64, avg float64) {
	n := g.N()
	local = make([]float64, n)
	// One dense bitset, reused across vertices: for each neighbour a of v,
	// mark a's adjacency and probe the remaining neighbours against it.
	// This replaces the per-vertex hash sets with O(1) bit probes over the
	// CSR while keeping the exact pair-membership semantics.
	marks := bitset.New(n)
	sum := 0.0
	counted := 0
	for v := 0; v < n; v++ {
		ns := g.Neighbours(int32(v))
		k := len(ns)
		if k < 2 {
			continue
		}
		links := 0
		for i := 0; i < k; i++ {
			na := g.Neighbours(ns[i])
			for _, w := range na {
				marks.Set(w)
			}
			for j := i + 1; j < k; j++ {
				if marks.Has(ns[j]) {
					links++
				}
			}
			for _, w := range na {
				marks.Clear(w)
			}
		}
		local[v] = 2 * float64(links) / float64(k*(k-1))
		sum += local[v]
		counted++
	}
	if counted > 0 {
		avg = sum / float64(counted)
	}
	return local, avg
}

// Communities detects communities by synchronous label propagation with
// deterministic tie-breaking (lowest label wins), returning a community
// label per vertex and the community count.
func (g *Graph) Communities(maxIter int) (labels []int32, count int) {
	n := g.N()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = int32(i)
	}
	next := make([]int32, n)
	for it := 0; it < maxIter; it++ {
		changed := 0
		counts := map[int32]int{}
		for v := 0; v < n; v++ {
			ns := g.Neighbours(int32(v))
			if len(ns) == 0 {
				next[v] = labels[v]
				continue
			}
			for k := range counts {
				delete(counts, k)
			}
			for _, w := range ns {
				counts[labels[w]]++
			}
			best, bestC := labels[v], 0
			for l, c := range counts {
				if c > bestC || (c == bestC && l < best) {
					best, bestC = l, c
				}
			}
			next[v] = best
			if best != labels[v] {
				changed++
			}
		}
		labels, next = next, labels
		if changed == 0 {
			break
		}
	}
	seen := map[int32]bool{}
	for _, l := range labels {
		seen[l] = true
	}
	return labels, len(seen)
}

// ConnectedComponents labels vertices by component and returns the number
// of components; the SNB persons graph is "a fully connected component of
// persons over their friendship relationships" (§2), so the giant
// component must cover almost everyone.
func (g *Graph) ConnectedComponents() (labels []int32, count int) {
	n := g.N()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	for v := 0; v < n; v++ {
		if labels[v] >= 0 {
			continue
		}
		labels[v] = int32(count)
		queue := []int32{int32(v)}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbours(x) {
				if labels[w] < 0 {
					labels[w] = int32(count)
					queue = append(queue, w)
				}
			}
		}
		count++
	}
	return labels, count
}

// TopK returns the indices of the k largest values (stable by index).
func TopK(values []float64, k int) []int {
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return values[idx[a]] > values[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
