// Package bi implements a working draft of the SNB Business Intelligence
// workload, which §1 of the paper describes as "a set of queries that
// access a large percentage of all entities in the dataset (the 'fact
// tables'), and groups these in various dimensions ... the distinguishing
// factor is the presence of graph traversal predicates and recursion",
// akin to TPC-H/TPC-DS with graph flavour. The paper marks SNB-BI as a
// working draft; the eight queries here cover its stated dimensions:
// full-fact-table scans, time/geography/tag group-bys, and traversal
// predicates over the friendship graph and the tag-class hierarchy.
package bi

import (
	"sort"
	"time"

	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/store"
)

// monthOf buckets a simulation timestamp into (year, month).
func monthOf(millis int64) (int, time.Month) {
	t := time.UnixMilli(millis).UTC()
	return t.Year(), t.Month()
}

// allMessages streams every post and comment ID with its creation date.
func allMessages(tx *store.Txn, fn func(id ids.ID, created int64)) {
	for _, kind := range []ids.Kind{ids.KindPost, ids.KindComment} {
		for _, m := range tx.NodesOfKind(kind) {
			fn(m, tx.Prop(m, store.PropCreationDate).Int())
		}
	}
}

// BI1Row is a posting-summary group.
type BI1Row struct {
	Year         int
	Month        time.Month
	IsComment    bool
	LengthClass  int // 0 short (<40), 1 medium (<120), 2 long
	MessageCount int
	AvgLength    float64
}

// BI1 — posting summary: group all messages by (year, month, kind, length
// class) with counts and average length; the full-fact-table scan +
// multi-dimension group-by of the BI workload.
func BI1(tx *store.Txn) []BI1Row {
	type key struct {
		y  int
		m  time.Month
		c  bool
		lc int
	}
	counts := map[key]*BI1Row{}
	allMessages(tx, func(id ids.ID, created int64) {
		length := int(tx.Prop(id, store.PropLength).Int())
		lc := 0
		switch {
		case length >= 120:
			lc = 2
		case length >= 40:
			lc = 1
		}
		y, m := monthOf(created)
		k := key{y, m, id.Kind() == ids.KindComment, lc}
		row := counts[k]
		if row == nil {
			row = &BI1Row{Year: y, Month: m, IsComment: k.c, LengthClass: lc}
			counts[k] = row
		}
		row.MessageCount++
		row.AvgLength += float64(length)
	})
	out := make([]BI1Row, 0, len(counts))
	for _, r := range counts {
		r.AvgLength /= float64(r.MessageCount)
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Year != b.Year {
			return a.Year < b.Year
		}
		if a.Month != b.Month {
			return a.Month < b.Month
		}
		if a.IsComment != b.IsComment {
			return !a.IsComment
		}
		return a.LengthClass < b.LengthClass
	})
	return out
}

// BI2Row is a tag-evolution entry.
type BI2Row struct {
	Tag        ids.ID
	Name       string
	CountA     int
	CountB     int
	Difference int // |CountA - CountB|
}

// BI2 — tag evolution: compare tag usage between two consecutive windows
// and rank by absolute change (trending topics at BI granularity).
func BI2(tx *store.Txn, windowStart, windowLen int64, limit int) []BI2Row {
	countIn := func(lo, hi int64) map[ids.ID]int {
		counts := map[ids.ID]int{}
		allMessages(tx, func(id ids.ID, created int64) {
			if created < lo || created >= hi {
				return
			}
			for _, te := range tx.Out(id, store.EdgeHasTag) {
				counts[te.To]++
			}
		})
		return counts
	}
	a := countIn(windowStart, windowStart+windowLen)
	b := countIn(windowStart+windowLen, windowStart+2*windowLen)
	tags := map[ids.ID]bool{}
	for t := range a {
		tags[t] = true
	}
	for t := range b {
		tags[t] = true
	}
	var out []BI2Row
	for t := range tags {
		diff := a[t] - b[t]
		if diff < 0 {
			diff = -diff
		}
		out = append(out, BI2Row{
			Tag: t, Name: tx.Prop(t, store.PropName).Str(),
			CountA: a[t], CountB: b[t], Difference: diff,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Difference != out[j].Difference {
			return out[i].Difference > out[j].Difference
		}
		return out[i].Name < out[j].Name
	})
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

// BI3Row is a per-country topic entry.
type BI3Row struct {
	Country int
	Tag     ids.ID
	Count   int
}

// BI3 — popular topics by country: group message tags by the message's
// country dimension; top tag per country.
func BI3(tx *store.Txn) []BI3Row {
	type key struct {
		country int
		tag     ids.ID
	}
	counts := map[key]int{}
	allMessages(tx, func(id ids.ID, created int64) {
		country := int(tx.Prop(id, store.PropCountry).Int())
		for _, te := range tx.Out(id, store.EdgeHasTag) {
			counts[key{country, te.To}]++
		}
	})
	best := map[int]BI3Row{}
	for k, c := range counts {
		cur, ok := best[k.country]
		if !ok || c > cur.Count || (c == cur.Count && k.tag < cur.Tag) {
			best[k.country] = BI3Row{Country: k.country, Tag: k.tag, Count: c}
		}
	}
	out := make([]BI3Row, 0, len(best))
	for _, r := range best {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Country < out[j].Country })
	return out
}

// BI4Row ranks persons by engagement.
type BI4Row struct {
	Person   ids.ID
	Messages int
	Likes    int // likes received on their messages
	Replies  int // replies received
	Score    int
}

// BI4 — engagement ranking: for every person, aggregate message count,
// likes received and replies received; score = messages + 2*likes +
// 2*replies. A whole-graph aggregation joining three fact relations.
func BI4(tx *store.Txn, limit int) []BI4Row {
	rows := map[ids.ID]*BI4Row{}
	get := func(p ids.ID) *BI4Row {
		r := rows[p]
		if r == nil {
			r = &BI4Row{Person: p}
			rows[p] = r
		}
		return r
	}
	allMessages(tx, func(id ids.ID, created int64) {
		creators := tx.Out(id, store.EdgeHasCreator)
		if len(creators) == 0 {
			return
		}
		r := get(creators[0].To)
		r.Messages++
		r.Likes += len(tx.In(id, store.EdgeLikes))
		r.Replies += len(tx.In(id, store.EdgeReplyOf))
	})
	out := make([]BI4Row, 0, len(rows))
	for _, r := range rows {
		r.Score = r.Messages + 2*r.Likes + 2*r.Replies
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Person < out[j].Person
	})
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

// BI5Row is a tag-class rollup.
type BI5Row struct {
	Class    ids.ID
	Name     string
	Messages int
}

// BI5 — tag-class rollup: count messages per tag class, rolling counts up
// the isSubclassOf hierarchy to the roots (the recursion dimension of the
// BI workload).
func BI5(tx *store.Txn) []BI5Row {
	// Direct counts per class.
	direct := map[ids.ID]int{}
	allMessages(tx, func(id ids.ID, created int64) {
		for _, te := range tx.Out(id, store.EdgeHasTag) {
			types := tx.Out(te.To, store.EdgeHasType)
			if len(types) > 0 {
				direct[types[0].To]++
			}
		}
	})
	// Roll up: every class adds its count to all ancestors.
	total := map[ids.ID]int{}
	for _, cls := range tx.NodesOfKind(ids.KindTagClass) {
		c := direct[cls]
		cur := cls
		for depth := 0; depth < 32; depth++ {
			total[cur] += c
			parents := tx.Out(cur, store.EdgeIsSubclassOf)
			if len(parents) == 0 {
				break
			}
			cur = parents[0].To
		}
	}
	out := make([]BI5Row, 0, len(total))
	for cls, c := range total {
		if c == 0 {
			continue
		}
		out = append(out, BI5Row{Class: cls, Name: tx.Prop(cls, store.PropName).Str(), Messages: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Messages != out[j].Messages {
			return out[i].Messages > out[j].Messages
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// BI6Row is a zombie-detection entry.
type BI6Row struct {
	Person     ids.ID
	Messages   int
	LikesGiven int
}

// BI6 — "zombies": persons created before a date with fewer than k
// messages, reported with their like activity (lurkers skew engagement
// metrics; a selective full-person scan).
func BI6(tx *store.Txn, createdBefore int64, maxMessages int) []BI6Row {
	likesGiven := map[ids.ID]int{}
	msgs := map[ids.ID]int{}
	for _, p := range tx.NodesOfKind(ids.KindPerson) {
		likesGiven[p] = len(tx.Out(p, store.EdgeLikes))
		msgs[p] = len(tx.In(p, store.EdgeHasCreator))
	}
	var out []BI6Row
	for _, p := range tx.NodesOfKind(ids.KindPerson) {
		if tx.Prop(p, store.PropCreationDate).Int() >= createdBefore {
			continue
		}
		if msgs[p] >= maxMessages {
			continue
		}
		out = append(out, BI6Row{Person: p, Messages: msgs[p], LikesGiven: likesGiven[p]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Messages != out[j].Messages {
			return out[i].Messages < out[j].Messages
		}
		return out[i].Person < out[j].Person
	})
	return out
}

// BI7Row scores a forum by the reach of its member network.
type BI7Row struct {
	Forum   ids.ID
	Title   string
	Members int
	Reach   int // distinct persons within one knows-hop of the members
}

// BI7 — forum reach: for the largest forums, the size of the 1-hop
// friendship neighbourhood of the membership (graph traversal predicate
// over a group-by result).
func BI7(tx *store.Txn, limit int) []BI7Row {
	forums := tx.NodesOfKind(ids.KindForum)
	type fm struct {
		forum   ids.ID
		members []store.Edge
	}
	all := make([]fm, 0, len(forums))
	for _, f := range forums {
		all = append(all, fm{f, tx.Out(f, store.EdgeHasMember)})
	}
	sort.Slice(all, func(i, j int) bool {
		if len(all[i].members) != len(all[j].members) {
			return len(all[i].members) > len(all[j].members)
		}
		return all[i].forum < all[j].forum
	})
	if len(all) > limit {
		all = all[:limit]
	}
	out := make([]BI7Row, 0, len(all))
	for _, f := range all {
		reach := map[ids.ID]bool{}
		for _, m := range f.members {
			reach[m.To] = true
			for _, e := range tx.Out(m.To, store.EdgeKnows) {
				reach[e.To] = true
			}
		}
		out = append(out, BI7Row{
			Forum: f.forum, Title: tx.Prop(f.forum, store.PropTitle).Str(),
			Members: len(f.members), Reach: len(reach),
		})
	}
	return out
}

// BI8Row is a conversation-depth histogram bucket.
type BI8Row struct {
	Depth    int
	Comments int
}

// BI8 — thread depth histogram: the distribution of reply depths over all
// comments (recursive traversal of the reply trees; "trees made by replies
// to posts" is a §3 choke point).
func BI8(tx *store.Txn) []BI8Row {
	depth := map[ids.ID]int{}
	var resolve func(id ids.ID) int
	resolve = func(id ids.ID) int {
		if id.Kind() == ids.KindPost {
			return 0
		}
		if d, ok := depth[id]; ok {
			return d
		}
		parents := tx.Out(id, store.EdgeReplyOf)
		if len(parents) == 0 {
			return 0
		}
		d := resolve(parents[0].To) + 1
		depth[id] = d
		return d
	}
	hist := map[int]int{}
	for _, c := range tx.NodesOfKind(ids.KindComment) {
		hist[resolve(c)]++
	}
	out := make([]BI8Row, 0, len(hist))
	for d, n := range hist {
		out = append(out, BI8Row{Depth: d, Comments: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Depth < out[j].Depth })
	return out
}
