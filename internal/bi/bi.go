// Package bi implements a working draft of the SNB Business Intelligence
// workload, which §1 of the paper describes as "a set of queries that
// access a large percentage of all entities in the dataset (the 'fact
// tables'), and groups these in various dimensions ... the distinguishing
// factor is the presence of graph traversal predicates and recursion",
// akin to TPC-H/TPC-DS with graph flavour. The paper marks SNB-BI as a
// working draft; the eight queries here cover its stated dimensions:
// full-fact-table scans, time/geography/tag group-bys, and traversal
// predicates over the friendship graph and the tag-class hierarchy.
//
// # The two-and-a-half read paths
//
// Like the Interactive queries, every BI query has exactly one logical
// implementation, written against the generic store.Reader contract:
// instantiated with *store.Txn it is the transactional formulation,
// instantiated with *store.SnapshotView it runs lock-free over the frozen
// CSR image. BI queries are whole-graph scans, so each one is factored
// into a per-row kernel feeding a partial aggregate plus a finalize step —
// which is exactly the shape morsel-driven parallelism needs. The third
// path (parallel.go) reuses those same kernels: internal/exec shards the
// view's dense per-kind node ranges into morsels, each worker folds its
// morsels into a private partial, and the shared finalize merges the
// partials. Results are identical on all three paths by construction —
// every kernel is a pure function of the reader and every ordering
// tie-breaks on a unique key — and the equivalence property tests pin it.
package bi

import (
	"sort"
	"time"

	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/workload"
)

// messageKinds are the two fact-table node kinds every message scan walks.
var messageKinds = [2]ids.Kind{ids.KindPost, ids.KindComment}

// monthBucketer buckets simulation timestamps into (year, month) with a
// one-entry range cache: the [lo, hi) millisecond span of the last month
// resolved is kept, and only timestamps outside it pay the time.Date
// calendar math. Message scans touch creation dates in near-sorted runs
// (node IDs correlate with creation time), so BI1's scan loop — the only
// calendar-bucketing kernel; BI2/BI3 compare raw milliseconds — hits the
// cache almost always instead of calling time.UnixMilli per row. Each
// partial aggregate owns one — never share a bucketer across workers.
type monthBucketer struct {
	lo, hi int64 // cached month's [lo, hi) span; hi==0 means empty
	year   int
	month  time.Month
}

func (mb *monthBucketer) bucket(millis int64) (int, time.Month) {
	if mb.hi == 0 || millis < mb.lo || millis >= mb.hi {
		t := time.UnixMilli(millis).UTC()
		mb.year, mb.month = t.Year(), t.Month()
		mb.lo = time.Date(mb.year, mb.month, 1, 0, 0, 0, 0, time.UTC).UnixMilli()
		mb.hi = time.Date(mb.year, mb.month+1, 1, 0, 0, 0, 0, time.UTC).UnixMilli()
	}
	return mb.year, mb.month
}

// BI1 — posting summary.

// BI1Row is a posting-summary group.
type BI1Row struct {
	Year         int
	Month        time.Month
	IsComment    bool
	LengthClass  int // 0 short (<40), 1 medium (<120), 2 long
	MessageCount int
	AvgLength    float64
}

type bi1Key struct {
	y  int
	m  time.Month
	c  bool
	lc int
}

// bi1Agg accumulates one group. Lengths are summed as integers so the
// average is independent of scan order — float accumulation would make the
// parallel merge order observable in the last bits.
type bi1Agg struct {
	count  int
	lenSum int
}

type bi1Partial struct {
	groups map[bi1Key]bi1Agg
	mb     monthBucketer
}

func (p *bi1Partial) init() { p.groups = make(map[bi1Key]bi1Agg) }

// bi1Add is the BI1 kernel: classify one message into its
// (year, month, kind, length class) group.
//
//snb:deterministic
func bi1Add[R store.Reader](r R, p *bi1Partial, id ids.ID) {
	length := int(r.Prop(id, store.PropLength).Int())
	lc := 0
	switch {
	case length >= 120:
		lc = 2
	case length >= 40:
		lc = 1
	}
	y, m := p.mb.bucket(r.Prop(id, store.PropCreationDate).Int())
	k := bi1Key{y, m, id.Kind() == ids.KindComment, lc}
	agg := p.groups[k]
	agg.count++
	agg.lenSum += length
	p.groups[k] = agg
}

//snb:deterministic
func bi1Finalize(parts []bi1Partial) []BI1Row {
	groups := parts[0].groups
	for _, part := range parts[1:] {
		//snb:mapiter-ok commutative merge of disjoint-scan partials
		for k, g := range part.groups {
			agg := groups[k]
			agg.count += g.count
			agg.lenSum += g.lenSum
			groups[k] = agg
		}
	}
	out := make([]BI1Row, 0, len(groups))
	//snb:mapiter-ok collect-then-sort: order is discarded below
	for k, g := range groups {
		out = append(out, BI1Row{
			Year: k.y, Month: k.m, IsComment: k.c, LengthClass: k.lc,
			MessageCount: g.count, AvgLength: float64(g.lenSum) / float64(g.count),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Year != b.Year {
			return a.Year < b.Year
		}
		if a.Month != b.Month {
			return a.Month < b.Month
		}
		if a.IsComment != b.IsComment {
			return !a.IsComment
		}
		return a.LengthClass < b.LengthClass
	})
	return out
}

// BI1 — posting summary: group all messages by (year, month, kind, length
// class) with counts and average length; the full-fact-table scan +
// multi-dimension group-by of the BI workload.
func BI1[R store.Reader](r R) []BI1Row {
	var part bi1Partial
	part.init()
	for _, kind := range messageKinds {
		for _, m := range r.NodesOfKind(kind) {
			bi1Add(r, &part, m)
		}
	}
	return bi1Finalize([]bi1Partial{part})
}

// BI2 — tag evolution.

// BI2Row is a tag-evolution entry.
type BI2Row struct {
	Tag        ids.ID
	Name       string
	CountA     int
	CountB     int
	Difference int // |CountA - CountB|
}

type bi2Partial struct {
	a, b map[ids.ID]int
}

func (p *bi2Partial) init() {
	p.a = make(map[ids.ID]int)
	p.b = make(map[ids.ID]int)
}

// bi2Add is the BI2 kernel: one scan classifies a message into window A or
// B (or neither) and counts its tags there.
//
//snb:deterministic
func bi2Add[R store.Reader](r R, p *bi2Partial, id ids.ID, windowStart, windowLen int64) {
	created := r.Prop(id, store.PropCreationDate).Int()
	var counts map[ids.ID]int
	switch {
	case created >= windowStart && created < windowStart+windowLen:
		counts = p.a
	case created >= windowStart+windowLen && created < windowStart+2*windowLen:
		counts = p.b
	default:
		return
	}
	for _, te := range r.Out(id, store.EdgeHasTag) {
		counts[te.To]++
	}
}

//snb:deterministic
func bi2Finalize[R store.Reader](r R, parts []bi2Partial, limit int) []BI2Row {
	a, b := parts[0].a, parts[0].b
	for _, part := range parts[1:] {
		//snb:mapiter-ok commutative merge of disjoint-scan partials
		for t, c := range part.a {
			a[t] += c
		}
		//snb:mapiter-ok commutative merge of disjoint-scan partials
		for t, c := range part.b {
			b[t] += c
		}
	}
	tags := map[ids.ID]bool{}
	//snb:mapiter-ok building a set: insertion order is irrelevant
	for t := range a {
		tags[t] = true
	}
	//snb:mapiter-ok building a set: insertion order is irrelevant
	for t := range b {
		tags[t] = true
	}
	out := make([]BI2Row, 0, len(tags))
	//snb:mapiter-ok collect-then-sort: order is discarded below
	for t := range tags {
		diff := a[t] - b[t]
		if diff < 0 {
			diff = -diff
		}
		out = append(out, BI2Row{
			Tag: t, Name: r.Prop(t, store.PropName).Str(),
			CountA: a[t], CountB: b[t], Difference: diff,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Difference != out[j].Difference {
			return out[i].Difference > out[j].Difference
		}
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Tag < out[j].Tag
	})
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

// BI2 — tag evolution: compare tag usage between two consecutive windows
// and rank by absolute change (trending topics at BI granularity). One
// message scan feeds both windows.
func BI2[R store.Reader](r R, windowStart, windowLen int64, limit int) []BI2Row {
	var part bi2Partial
	part.init()
	for _, kind := range messageKinds {
		for _, m := range r.NodesOfKind(kind) {
			bi2Add(r, &part, m, windowStart, windowLen)
		}
	}
	return bi2Finalize(r, []bi2Partial{part}, limit)
}

// BI3 — popular topics by country.

// BI3Row is a per-country topic entry.
type BI3Row struct {
	Country int
	Tag     ids.ID
	Count   int
}

type bi3Key struct {
	country int
	tag     ids.ID
}

type bi3Partial struct {
	counts map[bi3Key]int
}

func (p *bi3Partial) init() { p.counts = make(map[bi3Key]int) }

// bi3Add is the BI3 kernel: count one message's tags under its country
// dimension.
//
//snb:deterministic
func bi3Add[R store.Reader](r R, p *bi3Partial, id ids.ID) {
	country := int(r.Prop(id, store.PropCountry).Int())
	for _, te := range r.Out(id, store.EdgeHasTag) {
		p.counts[bi3Key{country, te.To}]++
	}
}

//snb:deterministic
func bi3Finalize(parts []bi3Partial) []BI3Row {
	counts := parts[0].counts
	for _, part := range parts[1:] {
		//snb:mapiter-ok commutative merge of disjoint-scan partials
		for k, c := range part.counts {
			counts[k] += c
		}
	}
	best := map[int]BI3Row{}
	//snb:mapiter-ok argmax with a total tie-break (count, then tag): any visit order picks the same winner
	for k, c := range counts {
		cur, ok := best[k.country]
		if !ok || c > cur.Count || (c == cur.Count && k.tag < cur.Tag) {
			best[k.country] = BI3Row{Country: k.country, Tag: k.tag, Count: c}
		}
	}
	out := make([]BI3Row, 0, len(best))
	//snb:mapiter-ok collect-then-sort: order is discarded below
	for _, r := range best {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Country < out[j].Country })
	return out
}

// BI3 — popular topics by country: group message tags by the message's
// country dimension; top tag per country.
func BI3[R store.Reader](r R) []BI3Row {
	var part bi3Partial
	part.init()
	for _, kind := range messageKinds {
		for _, m := range r.NodesOfKind(kind) {
			bi3Add(r, &part, m)
		}
	}
	return bi3Finalize([]bi3Partial{part})
}

// BI4 — engagement ranking.

// BI4Row ranks persons by engagement.
type BI4Row struct {
	Person   ids.ID
	Messages int
	Likes    int // likes received on their messages
	Replies  int // replies received
	Score    int
}

type bi4Agg struct {
	messages, likes, replies int
}

type bi4Partial struct {
	rows map[ids.ID]bi4Agg
}

func (p *bi4Partial) init() { p.rows = make(map[ids.ID]bi4Agg) }

// bi4Add is the BI4 kernel: credit one message (and the likes/replies it
// received) to its creator.
//
//snb:deterministic
func bi4Add[R store.Reader](r R, p *bi4Partial, id ids.ID) {
	creators := r.Out(id, store.EdgeHasCreator)
	if len(creators) == 0 {
		return
	}
	creator := creators[0]
	agg := p.rows[creator.To]
	agg.messages++
	agg.likes += r.InDegree(id, store.EdgeLikes)
	agg.replies += r.InDegree(id, store.EdgeReplyOf)
	p.rows[creator.To] = agg
}

//snb:deterministic
func bi4Finalize(parts []bi4Partial, limit int) []BI4Row {
	rows := parts[0].rows
	for _, part := range parts[1:] {
		//snb:mapiter-ok commutative merge of disjoint-scan partials
		for p, a := range part.rows {
			agg := rows[p]
			agg.messages += a.messages
			agg.likes += a.likes
			agg.replies += a.replies
			rows[p] = agg
		}
	}
	out := make([]BI4Row, 0, len(rows))
	//snb:mapiter-ok collect-then-sort: order is discarded below
	for p, a := range rows {
		out = append(out, BI4Row{
			Person: p, Messages: a.messages, Likes: a.likes, Replies: a.replies,
			Score: a.messages + 2*a.likes + 2*a.replies,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Person < out[j].Person
	})
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

// BI4 — engagement ranking: for every person, aggregate message count,
// likes received and replies received; score = messages + 2*likes +
// 2*replies. A whole-graph aggregation joining three fact relations.
func BI4[R store.Reader](r R, limit int) []BI4Row {
	var part bi4Partial
	part.init()
	for _, kind := range messageKinds {
		for _, m := range r.NodesOfKind(kind) {
			bi4Add(r, &part, m)
		}
	}
	return bi4Finalize([]bi4Partial{part}, limit)
}

// BI5 — tag-class rollup.

// BI5Row is a tag-class rollup.
type BI5Row struct {
	Class    ids.ID
	Name     string
	Messages int
}

type bi5Partial struct {
	direct map[ids.ID]int
}

func (p *bi5Partial) init() { p.direct = make(map[ids.ID]int) }

// bi5Add is the BI5 kernel: count one message under the class of each of
// its tags.
func bi5Add[R store.Reader](r R, p *bi5Partial, id ids.ID) {
	for _, te := range r.Out(id, store.EdgeHasTag) {
		if types := r.Out(te.To, store.EdgeHasType); len(types) > 0 {
			p.direct[types[0].To]++
		}
	}
}

// bi5Finalize rolls the merged direct counts up the isSubclassOf hierarchy
// (the recursion dimension of the BI workload). The rollup itself is
// serial: the class hierarchy is dimension-sized, not fact-sized.
func bi5Finalize[R store.Reader](r R, parts []bi5Partial) []BI5Row {
	direct := parts[0].direct
	for _, part := range parts[1:] {
		for cls, c := range part.direct {
			direct[cls] += c
		}
	}
	total := map[ids.ID]int{}
	for _, cls := range r.NodesOfKind(ids.KindTagClass) {
		c := direct[cls]
		cur := cls
		for depth := 0; depth < 32; depth++ {
			total[cur] += c
			parents := r.Out(cur, store.EdgeIsSubclassOf)
			if len(parents) == 0 {
				break
			}
			cur = parents[0].To
		}
	}
	out := make([]BI5Row, 0, len(total))
	for cls, c := range total {
		if c == 0 {
			continue
		}
		out = append(out, BI5Row{Class: cls, Name: r.Prop(cls, store.PropName).Str(), Messages: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Messages != out[j].Messages {
			return out[i].Messages > out[j].Messages
		}
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Class < out[j].Class
	})
	return out
}

// BI5 — tag-class rollup: count messages per tag class, rolling counts up
// the isSubclassOf hierarchy to the roots.
func BI5[R store.Reader](r R) []BI5Row {
	var part bi5Partial
	part.init()
	for _, kind := range messageKinds {
		for _, m := range r.NodesOfKind(kind) {
			bi5Add(r, &part, m)
		}
	}
	return bi5Finalize(r, []bi5Partial{part})
}

// BI6 — zombie detection.

// BI6Row is a zombie-detection entry.
type BI6Row struct {
	Person     ids.ID
	Messages   int
	LikesGiven int
}

// bi6Row is the BI6 kernel: one person's row, independent of every other
// person — the embarrassingly parallel shape of a selective person scan.
func bi6Row[R store.Reader](r R, p ids.ID, createdBefore int64, maxMessages int) (BI6Row, bool) {
	if r.Prop(p, store.PropCreationDate).Int() >= createdBefore {
		return BI6Row{}, false
	}
	msgs := r.InDegree(p, store.EdgeHasCreator)
	if msgs >= maxMessages {
		return BI6Row{}, false
	}
	return BI6Row{Person: p, Messages: msgs, LikesGiven: r.OutDegree(p, store.EdgeLikes)}, true
}

func bi6Finalize(parts [][]BI6Row) []BI6Row {
	out := parts[0]
	for _, part := range parts[1:] {
		out = append(out, part...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Messages != out[j].Messages {
			return out[i].Messages < out[j].Messages
		}
		return out[i].Person < out[j].Person
	})
	return out
}

// BI6 — "zombies": persons created before a date with fewer than k
// messages, reported with their like activity (lurkers skew engagement
// metrics; a selective full-person scan).
func BI6[R store.Reader](r R, createdBefore int64, maxMessages int) []BI6Row {
	var rows []BI6Row
	for _, p := range r.NodesOfKind(ids.KindPerson) {
		if row, ok := bi6Row(r, p, createdBefore, maxMessages); ok {
			rows = append(rows, row)
		}
	}
	return bi6Finalize([][]BI6Row{rows})
}

// BI7 — forum reach.

// BI7Row scores a forum by the reach of its member network.
type BI7Row struct {
	Forum   ids.ID
	Title   string
	Members int
	Reach   int // distinct persons within one knows-hop of the members
}

// bi7Select ranks forums by (membership desc, ID asc) and returns the
// indices of the top limit.
func bi7Select(forums []ids.ID, members []int, limit int) []int {
	order := make([]int, len(forums))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if members[a] != members[b] {
			return members[a] > members[b]
		}
		return forums[a] < forums[b]
	})
	if len(order) > limit {
		order = order[:limit]
	}
	return order
}

// bi7Reach is the BI7 traversal kernel: the number of distinct persons
// within one knows-hop of the forum's membership. The visited set comes
// from the scratch pool — a dense ordinal bitset on the view path, an ID
// hash set on the txn path.
func bi7Reach[R store.Reader](r R, sc *workload.Scratch, f ids.ID) int {
	sc.Begin(r)
	seen := sc.Seen()
	reach := 0
	for _, m := range r.Out(f, store.EdgeHasMember) {
		if seen.TryMark(m.To) {
			reach++
		}
		for _, e := range r.Out(m.To, store.EdgeKnows) {
			if seen.TryMark(e.To) {
				reach++
			}
		}
	}
	return reach
}

// BI7 — forum reach: for the largest forums, the size of the 1-hop
// friendship neighbourhood of the membership (graph traversal predicate
// over a group-by result).
func BI7[R store.Reader](r R, sc *workload.Scratch, limit int) []BI7Row {
	forums := r.NodesOfKind(ids.KindForum)
	members := make([]int, len(forums))
	for i, f := range forums {
		members[i] = r.OutDegree(f, store.EdgeHasMember)
	}
	order := bi7Select(forums, members, limit)
	out := make([]BI7Row, len(order))
	for i, idx := range order {
		f := forums[idx]
		out[i] = BI7Row{
			Forum: f, Title: r.Prop(f, store.PropTitle).Str(),
			Members: members[idx], Reach: bi7Reach(r, sc, f),
		}
	}
	return out
}

// BI8 — thread depth histogram.

// BI8Row is a conversation-depth histogram bucket.
type BI8Row struct {
	Depth    int
	Comments int
}

type bi8Partial struct {
	memo map[ids.ID]int
	hist map[int]int
	path []ids.ID
}

func (p *bi8Partial) init() {
	p.memo = make(map[ids.ID]int)
	p.hist = make(map[int]int)
}

// bi8Depth resolves one comment's reply depth by climbing the replyOf
// chain until a post, a memoised ancestor or a dangling parent, then
// memoising the climbed path. Depth is a pure function of the graph, so
// independent memo maps (one per worker) resolve identical values.
func bi8Depth[R store.Reader](r R, p *bi8Partial, c ids.ID) int {
	path := p.path[:0]
	cur, base := c, 0
	for {
		if cur.Kind() == ids.KindPost {
			break
		}
		if d, ok := p.memo[cur]; ok {
			base = d
			break
		}
		parents := r.Out(cur, store.EdgeReplyOf)
		if len(parents) == 0 {
			break // dangling reply target: counts as a root, like a post
		}
		path = append(path, cur)
		cur = parents[0].To
	}
	d := base
	for i := len(path) - 1; i >= 0; i-- {
		d++
		p.memo[path[i]] = d
	}
	p.path = path[:0]
	return d
}

// bi8Add is the BI8 kernel: histogram one comment's depth.
func bi8Add[R store.Reader](r R, p *bi8Partial, c ids.ID) {
	p.hist[bi8Depth(r, p, c)]++
}

func bi8Finalize(parts []bi8Partial) []BI8Row {
	hist := parts[0].hist
	for _, part := range parts[1:] {
		for d, n := range part.hist {
			hist[d] += n
		}
	}
	out := make([]BI8Row, 0, len(hist))
	for d, n := range hist {
		out = append(out, BI8Row{Depth: d, Comments: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Depth < out[j].Depth })
	return out
}

// BI8 — thread depth histogram: the distribution of reply depths over all
// comments (recursive traversal of the reply trees; "trees made by replies
// to posts" is a §3 choke point).
func BI8[R store.Reader](r R) []BI8Row {
	var part bi8Partial
	part.init()
	for _, c := range r.NodesOfKind(ids.KindComment) {
		bi8Add(r, &part, c)
	}
	return bi8Finalize([]bi8Partial{part})
}
