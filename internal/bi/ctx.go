package bi

import (
	"context"

	"ldbcsnb/internal/store"
	"ldbcsnb/internal/workload"
)

// RunViewCtx executes the BI query serially on the view path under ctx:
// cancellation or deadline expiry aborts the scan at the next cooperative
// check in the view's read entry points and returns
// store.ErrQueryCanceled. The serving layer's BI lane uses this hook; the
// morsel-parallel path (RunPar) stays uncancellable — a cancellable view
// must not be shared across workers — and is reserved for in-process
// analytics that own their runtime.
func (sp *Spec) RunViewCtx(ctx context.Context, v *store.SnapshotView, sc *workload.Scratch, p Params) (res Result, err error) {
	defer store.CatchCanceled(&err)
	res = sp.RunView(v.WithCancel(ctx), sc, p)
	return res, err
}
