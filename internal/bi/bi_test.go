package bi

import (
	"sync"
	"testing"

	"ldbcsnb/internal/datagen"
	"ldbcsnb/internal/schema"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/workload"
)

var (
	once sync.Once
	st   *store.Store
	data *schema.Dataset
)

func setup(t *testing.T) (*store.Store, *schema.Dataset) {
	t.Helper()
	once.Do(func() {
		out := datagen.Generate(datagen.Config{Seed: 41, Persons: 200, Workers: 2})
		st = store.New()
		schema.RegisterIndexes(st)
		if err := schema.LoadDimensions(st); err != nil {
			panic(err)
		}
		if err := schema.Load(st, out.Data); err != nil {
			panic(err)
		}
		data = out.Data
	})
	return st, data
}

func TestBI1PostingSummary(t *testing.T) {
	s, d := setup(t)
	s.View(func(tx *store.Txn) {
		rows := BI1(tx)
		if len(rows) == 0 {
			t.Fatal("no groups")
		}
		total := 0
		for _, r := range rows {
			total += r.MessageCount
			if r.MessageCount <= 0 {
				t.Fatal("empty group emitted")
			}
			if r.AvgLength < 0 {
				t.Fatal("negative length")
			}
			if r.LengthClass < 0 || r.LengthClass > 2 {
				t.Fatal("length class")
			}
		}
		want := d.Counts().Messages()
		if total != want {
			t.Fatalf("group-by lost rows: %d of %d", total, want)
		}
		// Sorted by (year, month).
		for i := 1; i < len(rows); i++ {
			a, b := rows[i-1], rows[i]
			if a.Year > b.Year {
				t.Fatal("year order")
			}
		}
	})
}

func TestBI2TagEvolution(t *testing.T) {
	s, _ := setup(t)
	s.View(func(tx *store.Txn) {
		win := int64(120 * 24 * 3600 * 1000)
		rows := BI2(tx, datagen.SimStart+win, win, 10)
		if len(rows) == 0 {
			t.Fatal("no tags")
		}
		for i := 1; i < len(rows); i++ {
			if rows[i].Difference > rows[i-1].Difference {
				t.Fatal("not sorted by difference")
			}
		}
		for _, r := range rows {
			if r.Difference != abs(r.CountA-r.CountB) {
				t.Fatal("difference arithmetic")
			}
			if r.Name == "" {
				t.Fatal("missing tag name")
			}
		}
	})
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestBI3TopicsByCountry(t *testing.T) {
	s, _ := setup(t)
	s.View(func(tx *store.Txn) {
		rows := BI3(tx)
		if len(rows) == 0 {
			t.Fatal("no countries")
		}
		seen := map[int]bool{}
		for _, r := range rows {
			if seen[r.Country] {
				t.Fatal("country repeated")
			}
			seen[r.Country] = true
			if r.Count <= 0 {
				t.Fatal("zero count")
			}
		}
	})
}

func TestBI4Engagement(t *testing.T) {
	s, d := setup(t)
	s.View(func(tx *store.Txn) {
		rows := BI4(tx, 20)
		if len(rows) == 0 {
			t.Fatal("no rows")
		}
		for i, r := range rows {
			if r.Score != r.Messages+2*r.Likes+2*r.Replies {
				t.Fatal("score formula")
			}
			if i > 0 && r.Score > rows[i-1].Score {
				t.Fatal("order")
			}
		}
		// The top person must actually have messages in the dataset.
		top := rows[0].Person
		n := 0
		for i := range d.Posts {
			if d.Posts[i].Creator == top {
				n++
			}
		}
		for i := range d.Comments {
			if d.Comments[i].Creator == top {
				n++
			}
		}
		if n != rows[0].Messages {
			t.Fatalf("top poster messages %d, dataset says %d", rows[0].Messages, n)
		}
	})
}

func TestBI5RollupMonotone(t *testing.T) {
	s, _ := setup(t)
	s.View(func(tx *store.Txn) {
		rows := BI5(tx)
		if len(rows) == 0 {
			t.Fatal("no classes")
		}
		// The root class "Thing" must carry the grand total (every tag is
		// under Thing) and therefore rank first.
		if rows[0].Name != "Thing" {
			t.Fatalf("root class should lead rollup, got %s", rows[0].Name)
		}
		for _, r := range rows[1:] {
			if r.Messages > rows[0].Messages {
				t.Fatal("child exceeds root rollup")
			}
		}
	})
}

func TestBI6Zombies(t *testing.T) {
	s, _ := setup(t)
	s.View(func(tx *store.Txn) {
		rows := BI6(tx, datagen.SimEnd, 3)
		for i, r := range rows {
			if r.Messages >= 3 {
				t.Fatal("filter broken")
			}
			if i > 0 && r.Messages < rows[i-1].Messages-1 && r.Messages > rows[i-1].Messages {
				t.Fatal("order")
			}
		}
		// Tightening the threshold can only shrink the result.
		tight := BI6(tx, datagen.SimEnd, 1)
		if len(tight) > len(rows) {
			t.Fatal("monotonicity")
		}
	})
}

func TestBI7ForumReach(t *testing.T) {
	s, _ := setup(t)
	s.View(func(tx *store.Txn) {
		rows := BI7(tx, workload.NewScratch(), 10)
		if len(rows) == 0 {
			t.Fatal("no forums")
		}
		for i, r := range rows {
			if r.Reach < r.Members {
				t.Fatalf("reach %d below members %d", r.Reach, r.Members)
			}
			if i > 0 && r.Members > rows[i-1].Members {
				t.Fatal("forums not ordered by membership")
			}
		}
	})
}

func TestBI8ThreadDepths(t *testing.T) {
	s, d := setup(t)
	s.View(func(tx *store.Txn) {
		rows := BI8(tx)
		if len(rows) == 0 {
			t.Fatal("no depths")
		}
		total := 0
		prev := -1
		for _, r := range rows {
			if r.Depth <= prev {
				t.Fatal("depth order")
			}
			prev = r.Depth
			if r.Depth < 1 {
				t.Fatalf("comment at depth %d", r.Depth)
			}
			total += r.Comments
		}
		if total != len(d.Comments) {
			t.Fatalf("histogram covers %d of %d comments", total, len(d.Comments))
		}
		// Discussion trees: some comments reply to comments (depth >= 2).
		if len(rows) < 2 {
			t.Fatal("no nested replies; reply trees missing")
		}
	})
}
