// Morsel-driven parallel BI execution over frozen snapshot views.
//
// Every BI*Par function runs the same kernels and finalize steps as its
// generic serial counterpart in bi.go, but the fact-table scan is sharded:
// internal/exec cuts the view's dense per-kind node ranges into morsels,
// workers claim morsels dynamically, and each worker folds its rows into a
// private partial aggregate. The view is immutable, so the scan side needs
// no synchronisation at all; the only coordination is the morsel cursor
// and the final serial merge of NumWorkers partials.
//
// Worker/scratch ownership rules: a worker index owns its partial (and,
// for BI7, its pooled workload.Scratch) for the duration of one Scan/Each
// call — never share either across workers, and never retain them past the
// merge. Scratches are recycled through a package pool across executions;
// they are era-aware, so a pooled scratch picked up after a view
// recompaction resets its ordinal-keyed state itself.
package bi

import (
	"sync"

	"ldbcsnb/internal/exec"
	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/workload"
)

// scratchPool recycles the per-worker era-aware scratches of the parallel
// traversal kernels (BI7's reach) across executions, so a steady BI lane
// stops allocating visited sets once every worker has a warm one.
var scratchPool = sync.Pool{New: func() any { return workload.NewScratch() }}

// grabScratches draws n pooled scratches, one per worker.
func grabScratches(n int) []*workload.Scratch {
	out := make([]*workload.Scratch, n)
	for i := range out {
		out[i] = scratchPool.Get().(*workload.Scratch)
	}
	return out
}

func putScratches(scs []*workload.Scratch) {
	for _, sc := range scs {
		scratchPool.Put(sc)
	}
}

// scanMessages shards the post and comment scans of one view across the
// configured workers, folding each morsel into the claiming worker's
// partial via kernel.
func scanMessages[P any](v *store.SnapshotView, par exec.Config, parts []P,
	kernel func(v *store.SnapshotView, p *P, id ids.ID)) {
	for _, kind := range messageKinds {
		par.Scan(v.NumOfKind(kind), func(worker, lo, hi int) {
			part := &parts[worker]
			for _, m := range v.KindRange(kind, lo, hi) {
				kernel(v, part, m)
			}
		})
	}
}

// BI1Par is BI1 on the morsel-parallel view path.
func BI1Par(v *store.SnapshotView, par exec.Config) []BI1Row {
	parts := make([]bi1Partial, par.NumWorkers())
	for i := range parts {
		parts[i].init()
	}
	scanMessages(v, par, parts, bi1Add[*store.SnapshotView])
	return bi1Finalize(parts)
}

// BI2Par is BI2 on the morsel-parallel view path.
func BI2Par(v *store.SnapshotView, par exec.Config, windowStart, windowLen int64, limit int) []BI2Row {
	parts := make([]bi2Partial, par.NumWorkers())
	for i := range parts {
		parts[i].init()
	}
	scanMessages(v, par, parts, func(v *store.SnapshotView, p *bi2Partial, id ids.ID) {
		bi2Add(v, p, id, windowStart, windowLen)
	})
	return bi2Finalize(v, parts, limit)
}

// BI3Par is BI3 on the morsel-parallel view path.
func BI3Par(v *store.SnapshotView, par exec.Config) []BI3Row {
	parts := make([]bi3Partial, par.NumWorkers())
	for i := range parts {
		parts[i].init()
	}
	scanMessages(v, par, parts, bi3Add[*store.SnapshotView])
	return bi3Finalize(parts)
}

// BI4Par is BI4 on the morsel-parallel view path.
func BI4Par(v *store.SnapshotView, par exec.Config, limit int) []BI4Row {
	parts := make([]bi4Partial, par.NumWorkers())
	for i := range parts {
		parts[i].init()
	}
	scanMessages(v, par, parts, bi4Add[*store.SnapshotView])
	return bi4Finalize(parts, limit)
}

// BI5Par is BI5 on the morsel-parallel view path (the rollup over the
// dimension-sized class hierarchy stays serial).
func BI5Par(v *store.SnapshotView, par exec.Config) []BI5Row {
	parts := make([]bi5Partial, par.NumWorkers())
	for i := range parts {
		parts[i].init()
	}
	scanMessages(v, par, parts, bi5Add[*store.SnapshotView])
	return bi5Finalize(v, parts)
}

// BI6Par is BI6 on the morsel-parallel view path: the person scan is
// sharded, each worker appends its surviving rows, and the merge re-sorts.
func BI6Par(v *store.SnapshotView, par exec.Config, createdBefore int64, maxMessages int) []BI6Row {
	parts := make([][]BI6Row, par.NumWorkers())
	par.Scan(v.NumOfKind(ids.KindPerson), func(worker, lo, hi int) {
		for _, p := range v.KindRange(ids.KindPerson, lo, hi) {
			if row, ok := bi6Row(v, p, createdBefore, maxMessages); ok {
				parts[worker] = append(parts[worker], row)
			}
		}
	})
	return bi6Finalize(parts)
}

// BI7Par is BI7 on the morsel-parallel view path: the membership scan is
// morsel-sharded into a position-indexed count array (disjoint writes, no
// merge), the top-limit selection is serial, and the per-forum reach
// traversals fan out one task at a time — forum cost is skewed, so the
// Each dispatch keeps workers busy while one of them walks a hub forum.
func BI7Par(v *store.SnapshotView, par exec.Config, limit int) []BI7Row {
	forums := v.NodesOfKind(ids.KindForum)
	members := make([]int, len(forums))
	par.Scan(len(forums), func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			members[i] = v.OutDegree(forums[i], store.EdgeHasMember)
		}
	})
	order := bi7Select(forums, members, limit)
	out := make([]BI7Row, len(order))
	scratches := grabScratches(par.NumWorkers())
	par.Each(len(order), func(worker, task int) {
		f := forums[order[task]]
		out[task] = BI7Row{
			Forum: f, Title: v.Prop(f, store.PropTitle).Str(),
			Members: members[order[task]], Reach: bi7Reach(v, scratches[worker], f),
		}
	})
	putScratches(scratches)
	return out
}

// BI8Par is BI8 on the morsel-parallel view path. Workers memoise reply
// depths independently; depth is a pure function of the frozen graph, so
// private memo maps resolve identical values without sharing.
func BI8Par(v *store.SnapshotView, par exec.Config) []BI8Row {
	parts := make([]bi8Partial, par.NumWorkers())
	for i := range parts {
		parts[i].init()
	}
	par.Scan(v.NumOfKind(ids.KindComment), func(worker, lo, hi int) {
		part := &parts[worker]
		for _, c := range v.KindRange(ids.KindComment, lo, hi) {
			bi8Add(v, part, c)
		}
	})
	return bi8Finalize(parts)
}
