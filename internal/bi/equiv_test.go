package bi

import (
	"fmt"
	"reflect"
	"testing"

	"ldbcsnb/internal/datagen"
	"ldbcsnb/internal/exec"
	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/schema"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/workload"
	"ldbcsnb/internal/xrand"
)

// The BI equivalence property tests: every query has one logical
// implementation factored into kernels shared by three execution paths —
// MVCC transaction, serial frozen view and morsel-parallel frozen view.
// These tests pin that all paths return identical results at the same
// snapshot timestamp, on the generated SNB graph, under interleaved
// updates, and on randomised schema-shaped graphs with edge deletions and
// forced view recompactions (era bumps).

// parConfigs are the worker fan-outs the parallel path is swept with; the
// small morsel size forces real multi-morsel scheduling even on the small
// test graphs.
var parConfigs = []exec.Config{
	{Workers: 1, MorselSize: 64},
	{Workers: 2, MorselSize: 64},
	{Workers: 8, MorselSize: 64},
}

// biEq compares one query's rows across paths, treating nil and empty as
// equal.
func biEq[T any](t *testing.T, query, path string, got, want []T) {
	t.Helper()
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s diverges on %s path:\n got %+v\nwant %+v", query, path, got, want)
	}
}

// assertBIAgree runs all eight BI queries on every path at the store's
// current watermark and fails on the first divergence. windowStart/
// windowLen parameterise BI2; createdBefore bounds BI6.
func assertBIAgree(t *testing.T, st *store.Store, windowStart, windowLen, createdBefore int64) {
	t.Helper()
	v := st.CurrentView()
	scV, scT := workload.NewScratch(), workload.NewScratch()
	st.View(func(tx *store.Txn) {
		if v.Timestamp() != tx.Snapshot() {
			t.Fatalf("snapshots diverge: view %d txn %d", v.Timestamp(), tx.Snapshot())
		}
		// Txn path is the reference; serial view first, then each fan-out.
		r1 := BI1(tx)
		biEq(t, "BI1", "view", BI1(v), r1)
		r2 := BI2(tx, windowStart, windowLen, 10)
		biEq(t, "BI2", "view", BI2(v, windowStart, windowLen, 10), r2)
		r3 := BI3(tx)
		biEq(t, "BI3", "view", BI3(v), r3)
		r4 := BI4(tx, 20)
		biEq(t, "BI4", "view", BI4(v, 20), r4)
		r5 := BI5(tx)
		biEq(t, "BI5", "view", BI5(v), r5)
		r6 := BI6(tx, createdBefore, 3)
		biEq(t, "BI6", "view", BI6(v, createdBefore, 3), r6)
		r7 := BI7(tx, scT, 10)
		biEq(t, "BI7", "view", BI7(v, scV, 10), r7)
		r8 := BI8(tx)
		biEq(t, "BI8", "view", BI8(v), r8)
		for _, par := range parConfigs {
			path := fmt.Sprintf("par%d", par.Workers)
			biEq(t, "BI1", path, BI1Par(v, par), r1)
			biEq(t, "BI2", path, BI2Par(v, par, windowStart, windowLen, 10), r2)
			biEq(t, "BI3", path, BI3Par(v, par), r3)
			biEq(t, "BI4", path, BI4Par(v, par, 20), r4)
			biEq(t, "BI5", path, BI5Par(v, par), r5)
			biEq(t, "BI6", path, BI6Par(v, par, createdBefore, 3), r6)
			biEq(t, "BI7", path, BI7Par(v, par, 10), r7)
			biEq(t, "BI8", path, BI8Par(v, par), r8)
		}
	})
}

// TestBIPathsAgreeOnSNB pins three-path equivalence on the generated SNB
// dataset.
func TestBIPathsAgreeOnSNB(t *testing.T) {
	st, _ := setup(t)
	win := int64(120 * 24 * 3600 * 1000)
	assertBIAgree(t, st, datagen.SimStart+win, win, datagen.SimEnd)
}

// TestBIPathsAgreeUnderInterleavedUpdates replays the update stream in
// chunks against a bulk-loaded store and re-checks three-path equivalence
// after every chunk — the parallel path must track each new epoch exactly.
func TestBIPathsAgreeUnderInterleavedUpdates(t *testing.T) {
	out := datagen.Generate(datagen.Config{Seed: 43, Persons: 120, Workers: 2, Events: true})
	bulk, updates := datagen.Split(out.Data, datagen.UpdateCut)
	st := store.New()
	schema.RegisterIndexes(st)
	if err := schema.LoadDimensions(st); err != nil {
		t.Fatal(err)
	}
	if err := schema.Load(st, bulk); err != nil {
		t.Fatal(err)
	}
	if len(updates) == 0 {
		t.Skip("no updates at this scale")
	}
	win := int64(120 * 24 * 3600 * 1000)
	chunks := 3
	per := (len(updates) + chunks - 1) / chunks
	for start := 0; start < len(updates); start += per {
		end := min(start+per, len(updates))
		for i := start; i < end; i++ {
			if err := workload.ApplyUpdate(st, &updates[i]); err != nil {
				t.Fatalf("update %d: %v", i, err)
			}
		}
		assertBIAgree(t, st, datagen.SimStart+win, win, datagen.SimEnd)
	}
}

// biRandGraph accumulates the random graph's entity population.
type biRandGraph struct {
	persons  []ids.ID
	messages []ids.ID
	forums   []ids.ID
	tags     []ids.ID
	// liveEdges tracks deletable (from, type, to) triples committed so far.
	liveEdges []biEdge
}

type biEdge struct {
	from, to ids.ID
	t        store.EdgeType
}

// loadBIRandomDimensions commits the dimension side: places, a small
// tag-class tree and tags (mirroring workload/random_test.go).
func loadBIRandomDimensions(t *testing.T, st *store.Store, g *biRandGraph) {
	t.Helper()
	tx := st.Begin()
	root := ids.DimensionID(ids.KindTagClass, 0)
	if err := tx.CreateNode(root, store.Props{{Key: store.PropName, Val: store.String("Thing")}}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		class := ids.DimensionID(ids.KindTagClass, uint32(i))
		if err := tx.CreateNode(class, store.Props{{Key: store.PropName, Val: store.String(fmt.Sprintf("class%d", i))}}); err != nil {
			t.Fatal(err)
		}
		_ = tx.AddEdge(class, store.EdgeIsSubclassOf, root, 0)
	}
	for i := 0; i < 8; i++ {
		tag := ids.DimensionID(ids.KindTag, uint32(i))
		if err := tx.CreateNode(tag, store.Props{{Key: store.PropName, Val: store.String(fmt.Sprintf("tag%d", i))}}); err != nil {
			t.Fatal(err)
		}
		_ = tx.AddEdge(tag, store.EdgeHasType, ids.DimensionID(ids.KindTagClass, uint32(1+i%3)), 0)
		g.tags = append(g.tags, tag)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// biRandomStep applies one random committed transaction: persons, knows
// edges, forums with members, tagged posts, reply comments, likes — and,
// unlike the Interactive random sweep, also tombstones a couple of
// previously committed edges, since BI scans aggregate over exactly the
// surviving facts.
func biRandomStep(t *testing.T, st *store.Store, r *xrand.Rand, g *biRandGraph, step int) {
	t.Helper()
	tx := st.Begin()
	now := int64(step) * 100000
	addEdge := func(from ids.ID, et store.EdgeType, to ids.ID, stamp int64) {
		if err := tx.AddEdge(from, et, to, stamp); err == nil {
			g.liveEdges = append(g.liveEdges, biEdge{from, to, et})
		}
	}
	for i := 0; i < 1+r.Intn(2); i++ {
		p := ids.Compose(ids.KindPerson, int64(step), uint32(i))
		props := store.Props{
			{Key: store.PropFirstName, Val: store.String("P")},
			{Key: store.PropCreationDate, Val: store.Int64(now)},
		}
		if err := tx.CreateNode(p, props); err != nil {
			t.Fatal(err)
		}
		g.persons = append(g.persons, p)
	}
	for i := 0; i < 3; i++ {
		a := g.persons[r.Intn(len(g.persons))]
		b := g.persons[r.Intn(len(g.persons))]
		if a != b {
			_ = tx.AddKnows(a, b, now+int64(i))
		}
	}
	if step%2 == 0 {
		f := ids.Compose(ids.KindForum, int64(step), 0)
		if err := tx.CreateNode(f, store.Props{
			{Key: store.PropTitle, Val: store.String(fmt.Sprintf("forum%d", step))},
			{Key: store.PropCreationDate, Val: store.Int64(now)},
		}); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 2; k++ {
			addEdge(f, store.EdgeHasMember, g.persons[r.Intn(len(g.persons))], now+int64(k))
		}
		g.forums = append(g.forums, f)
	}
	for i := 0; i < 2; i++ {
		post := ids.Compose(ids.KindPost, int64(step), uint32(i))
		created := now + int64(10+i)
		if err := tx.CreateNode(post, store.Props{
			{Key: store.PropCreationDate, Val: store.Int64(created)},
			{Key: store.PropLength, Val: store.Int64(int64(r.Intn(200)))},
			{Key: store.PropCountry, Val: store.Int64(int64(r.Intn(4)))},
		}); err != nil {
			t.Fatal(err)
		}
		addEdge(post, store.EdgeHasCreator, g.persons[r.Intn(len(g.persons))], created)
		for k := 0; k < 1+r.Intn(2); k++ {
			addEdge(post, store.EdgeHasTag, g.tags[r.Intn(len(g.tags))], 0)
		}
		g.messages = append(g.messages, post)
	}
	for i := 0; i < 1+r.Intn(2); i++ {
		c := ids.Compose(ids.KindComment, int64(step), uint32(i))
		created := now + int64(50+i)
		if err := tx.CreateNode(c, store.Props{
			{Key: store.PropCreationDate, Val: store.Int64(created)},
			{Key: store.PropLength, Val: store.Int64(int64(r.Intn(200)))},
			{Key: store.PropCountry, Val: store.Int64(int64(r.Intn(4)))},
		}); err != nil {
			t.Fatal(err)
		}
		addEdge(c, store.EdgeReplyOf, g.messages[r.Intn(len(g.messages))], created)
		addEdge(c, store.EdgeHasCreator, g.persons[r.Intn(len(g.persons))], created)
		if r.Bool(0.5) {
			addEdge(c, store.EdgeHasTag, g.tags[r.Intn(len(g.tags))], 0)
		}
		g.messages = append(g.messages, c)
	}
	for i := 0; i < 2; i++ {
		addEdge(g.persons[r.Intn(len(g.persons))], store.EdgeLikes,
			g.messages[r.Intn(len(g.messages))], now+int64(80+i))
	}
	// Tombstone up to two committed edges; a later step may re-delete an
	// already-dead triple, which DeleteEdge treats as a no-op.
	for i := 0; i < 2 && len(g.liveEdges) > 0; i++ {
		e := g.liveEdges[r.Intn(len(g.liveEdges))]
		_ = tx.DeleteEdge(e.from, e.t, e.to)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestBIPathsAgreeOnRandomGraphs grows random schema-shaped graphs with
// interleaved commits, edge deletions and periodically forced view
// recompactions, asserting three-path equivalence at every epoch. The
// forced era bumps exercise the pooled scratches' ordinal invalidation
// (stale bits after a recompaction would silently corrupt BI7's reach).
func TestBIPathsAgreeOnRandomGraphs(t *testing.T) {
	for seed := uint64(1); seed <= 2; seed++ {
		r := xrand.New(seed)
		st := store.New()
		g := &biRandGraph{}
		loadBIRandomDimensions(t, st, g)
		for step := 1; step <= 8; step++ {
			if step == 5 {
				// Force a full recompaction (era bump) on the next view
				// advance, then restore the default threshold.
				st.SetViewCompactThreshold(0)
			} else if step == 6 {
				st.SetViewCompactThreshold(4096)
			}
			biRandomStep(t, st, r, g, step)
			assertBIAgree(t, st, 0, 200000, int64(step+1)*100000)
		}
	}
}
