package bi

import (
	"ldbcsnb/internal/exec"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/workload"
	"ldbcsnb/internal/xrand"
)

// The BI-query registry, mirroring workload.Complex: one descriptor per
// query carrying its name, parameter binding against the driver's curated
// pools and the three execution paths. The driver's BI analyst lane and
// the benchmarks execute purely through this table.
//
// Each query has one generic runner; the descriptor stores its two serial
// instantiations (txn, view) plus the morsel-parallel view entry point, so
// every caller executes the same monomorphized kernels.

// NumQueries is the number of BI query templates.
const NumQueries = 8

// Params is one bound BI execution's parameter set; each query reads the
// fields its Bind populated.
type Params struct {
	WindowStart   int64 // BI2: start of window A (window B follows)
	WindowMillis  int64 // BI2: window length
	Limit         int   // BI2, BI4, BI7
	CreatedBefore int64 // BI6
	MaxMessages   int   // BI6
}

// Result summarises one BI execution for the driver (the full row sets
// stay inside the query; the lane only tracks latency and output size).
type Result struct {
	Rows int
}

// Spec describes one BI query template.
type Spec struct {
	// Num is the 1-based query number; Name its display label.
	Num  int
	Name string
	// Bind draws one parameter binding from the driver's curated pools.
	Bind func(pools *workload.ParamPools, rnd *xrand.Rand) Params
	// RunTxn and RunView are the two serial instantiations of the query's
	// single generic implementation.
	RunTxn  func(tx *store.Txn, sc *workload.Scratch, p Params) Result
	RunView func(v *store.SnapshotView, sc *workload.Scratch, p Params) Result
	// RunPar is the morsel-parallel view path (see parallel.go); par
	// carries the worker fan-out and morsel size.
	RunPar func(v *store.SnapshotView, par exec.Config, p Params) Result
}

// bindFixed returns a Bind for queries whose parameters don't draw from
// the pools.
func bindFixed(p Params) func(*workload.ParamPools, *xrand.Rand) Params {
	return func(*workload.ParamPools, *xrand.Rand) Params { return p }
}

// The per-query generic runners: bound parameters in, row counts out.

func runBI1[R store.Reader](r R, sc *workload.Scratch, p Params) Result {
	return Result{Rows: len(BI1(r))}
}

func runBI2[R store.Reader](r R, sc *workload.Scratch, p Params) Result {
	return Result{Rows: len(BI2(r, p.WindowStart, p.WindowMillis, p.Limit))}
}

func runBI3[R store.Reader](r R, sc *workload.Scratch, p Params) Result {
	return Result{Rows: len(BI3(r))}
}

func runBI4[R store.Reader](r R, sc *workload.Scratch, p Params) Result {
	return Result{Rows: len(BI4(r, p.Limit))}
}

func runBI5[R store.Reader](r R, sc *workload.Scratch, p Params) Result {
	return Result{Rows: len(BI5(r))}
}

func runBI6[R store.Reader](r R, sc *workload.Scratch, p Params) Result {
	return Result{Rows: len(BI6(r, p.CreatedBefore, p.MaxMessages))}
}

func runBI7[R store.Reader](r R, sc *workload.Scratch, p Params) Result {
	return Result{Rows: len(BI7(r, sc, p.Limit))}
}

func runBI8[R store.Reader](r R, sc *workload.Scratch, p Params) Result {
	return Result{Rows: len(BI8(r))}
}

// Registry[q-1] is the descriptor of BI query q.
var Registry = [NumQueries]Spec{
	{
		Num: 1, Name: "BI1",
		Bind:   bindFixed(Params{}),
		RunTxn: runBI1[*store.Txn], RunView: runBI1[*store.SnapshotView],
		RunPar: func(v *store.SnapshotView, par exec.Config, p Params) Result {
			return Result{Rows: len(BI1Par(v, par))}
		},
	},
	{
		Num: 2, Name: "BI2",
		Bind: func(pools *workload.ParamPools, rnd *xrand.Rand) Params {
			// Two consecutive windows ending at the simulation end, so
			// both sides of the comparison hold data.
			return Params{
				WindowStart:  pools.MaxDate - 2*pools.WindowMillis,
				WindowMillis: pools.WindowMillis,
				Limit:        10,
			}
		},
		RunTxn: runBI2[*store.Txn], RunView: runBI2[*store.SnapshotView],
		RunPar: func(v *store.SnapshotView, par exec.Config, p Params) Result {
			return Result{Rows: len(BI2Par(v, par, p.WindowStart, p.WindowMillis, p.Limit))}
		},
	},
	{
		Num: 3, Name: "BI3",
		Bind:   bindFixed(Params{}),
		RunTxn: runBI3[*store.Txn], RunView: runBI3[*store.SnapshotView],
		RunPar: func(v *store.SnapshotView, par exec.Config, p Params) Result {
			return Result{Rows: len(BI3Par(v, par))}
		},
	},
	{
		Num: 4, Name: "BI4",
		Bind:   bindFixed(Params{Limit: 20}),
		RunTxn: runBI4[*store.Txn], RunView: runBI4[*store.SnapshotView],
		RunPar: func(v *store.SnapshotView, par exec.Config, p Params) Result {
			return Result{Rows: len(BI4Par(v, par, p.Limit))}
		},
	},
	{
		Num: 5, Name: "BI5",
		Bind:   bindFixed(Params{}),
		RunTxn: runBI5[*store.Txn], RunView: runBI5[*store.SnapshotView],
		RunPar: func(v *store.SnapshotView, par exec.Config, p Params) Result {
			return Result{Rows: len(BI5Par(v, par))}
		},
	},
	{
		Num: 6, Name: "BI6",
		Bind: func(pools *workload.ParamPools, rnd *xrand.Rand) Params {
			return Params{CreatedBefore: pools.MaxDate, MaxMessages: 3}
		},
		RunTxn: runBI6[*store.Txn], RunView: runBI6[*store.SnapshotView],
		RunPar: func(v *store.SnapshotView, par exec.Config, p Params) Result {
			return Result{Rows: len(BI6Par(v, par, p.CreatedBefore, p.MaxMessages))}
		},
	},
	{
		Num: 7, Name: "BI7",
		Bind:   bindFixed(Params{Limit: 10}),
		RunTxn: runBI7[*store.Txn], RunView: runBI7[*store.SnapshotView],
		RunPar: func(v *store.SnapshotView, par exec.Config, p Params) Result {
			return Result{Rows: len(BI7Par(v, par, p.Limit))}
		},
	},
	{
		Num: 8, Name: "BI8",
		Bind:   bindFixed(Params{}),
		RunTxn: runBI8[*store.Txn], RunView: runBI8[*store.SnapshotView],
		RunPar: func(v *store.SnapshotView, par exec.Config, p Params) Result {
			return Result{Rows: len(BI8Par(v, par))}
		},
	},
}
