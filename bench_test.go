// The paper-experiment benchmarks: one testing.B benchmark per table and
// figure of the evaluation, each delegating to internal/bench and printing
// the regenerated table through b.Log so `go test -bench=. -benchmem`
// reproduces the full evaluation.
package snb_test

import (
	"os"
	"strconv"
	"sync"
	"testing"

	"ldbcsnb/internal/bench"
)

// benchPersons scales the benchmark environment; override with
// SNB_BENCH_PERSONS.
func benchPersons() int {
	if v := os.Getenv("SNB_BENCH_PERSONS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return bench.DefaultPersons
}

var (
	envOnce sync.Once
	env     *bench.Env
	envErr  error
)

func sharedEnv(b *testing.B) *bench.Env {
	b.Helper()
	envOnce.Do(func() {
		env, envErr = bench.NewEnv(benchPersons(), 42)
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	return env
}

func BenchmarkTable2FirstNameCorrelation(b *testing.B) {
	e := sharedEnv(b)
	var res *bench.Result
	for i := 0; i < b.N; i++ {
		res = bench.Table2(e)
	}
	b.Log("\n" + res.Render())
}

func BenchmarkTable3DatasetStatistics(b *testing.B) {
	var res *bench.Result
	for i := 0; i < b.N; i++ {
		res = bench.Table3([]int{100, 200, 400}, 42)
	}
	b.Log("\n" + res.Render())
}

func BenchmarkTable4QueryMix(b *testing.B) {
	e := sharedEnv(b)
	var res *bench.Result
	for i := 0; i < b.N; i++ {
		res = bench.Table4(e)
	}
	b.Log("\n" + res.Render())
}

func BenchmarkTable5DriverScalability(b *testing.B) {
	e := sharedEnv(b)
	var res *bench.Result
	for i := 0; i < b.N; i++ {
		res = bench.Table5(e, []int{1, 2, 4, 8})
	}
	b.Log("\n" + res.Render())
}

// interactiveOnce shares one mixed-workload run between Tables 6, 7, 9.
var (
	interOnce sync.Once
	interRep  interactiveRep
)

type interactiveRep struct {
	t6, t7, t9 *bench.Result
}

func interactive(b *testing.B) interactiveRep {
	e := sharedEnv(b)
	interOnce.Do(func() {
		rep := bench.RunInteractive(e, 3)
		interRep = interactiveRep{bench.Table6(rep), bench.Table7(rep), bench.Table9(rep)}
	})
	return interRep
}

func BenchmarkTable6ComplexReads(b *testing.B) {
	var r interactiveRep
	for i := 0; i < b.N; i++ {
		r = interactive(b)
	}
	b.Log("\n" + r.t6.Render())
}

func BenchmarkTable7ShortReads(b *testing.B) {
	var r interactiveRep
	for i := 0; i < b.N; i++ {
		r = interactive(b)
	}
	b.Log("\n" + r.t7.Render())
}

func BenchmarkTable8StorageSizes(b *testing.B) {
	e := sharedEnv(b)
	var res *bench.Result
	for i := 0; i < b.N; i++ {
		res = bench.Table8(e)
	}
	b.Log("\n" + res.Render())
}

func BenchmarkTable9Updates(b *testing.B) {
	var r interactiveRep
	for i := 0; i < b.N; i++ {
		r = interactive(b)
	}
	b.Log("\n" + r.t9.Render())
}

func BenchmarkFigure2aPostDensity(b *testing.B) {
	var res *bench.Result
	for i := 0; i < b.N; i++ {
		res = bench.Figure2a(200, 42)
	}
	b.Log("\n" + res.Render())
}

func BenchmarkFigure2bDegreePercentiles(b *testing.B) {
	var res *bench.Result
	for i := 0; i < b.N; i++ {
		res = bench.Figure2b()
	}
	b.Log("\n" + res.Render())
}

func BenchmarkFigure3aDegreeDistribution(b *testing.B) {
	e := sharedEnv(b)
	var res *bench.Result
	for i := 0; i < b.N; i++ {
		res = bench.Figure3a(e)
	}
	b.Log("\n" + res.Render())
}

func BenchmarkFigure3bDatagenScaleup(b *testing.B) {
	var res *bench.Result
	for i := 0; i < b.N; i++ {
		res = bench.Figure3b([]int{100, 200, 400}, []int{1, 2, 4}, 42)
	}
	b.Log("\n" + res.Render())
}

func BenchmarkFigure4JoinTypeAblation(b *testing.B) {
	e := sharedEnv(b)
	var res *bench.Result
	for i := 0; i < b.N; i++ {
		res = bench.Figure4(e, 3)
	}
	b.Log("\n" + res.Render())
}

func BenchmarkFigure5aTwoHopDistribution(b *testing.B) {
	e := sharedEnv(b)
	var res *bench.Result
	for i := 0; i < b.N; i++ {
		res = bench.Figure5a(e)
	}
	b.Log("\n" + res.Render())
}

func BenchmarkFigure5bParameterCuration(b *testing.B) {
	e := sharedEnv(b)
	var res *bench.Result
	for i := 0; i < b.N; i++ {
		res = bench.Figure5b(e, 20)
	}
	b.Log("\n" + res.Render())
}

func BenchmarkAblationWindowedExecution(b *testing.B) {
	e := sharedEnv(b)
	var res *bench.Result
	for i := 0; i < b.N; i++ {
		res = bench.AblationWindowed(e, 4)
	}
	b.Log("\n" + res.Render())
}

func BenchmarkAblationTimeOrderedIDs(b *testing.B) {
	e := sharedEnv(b)
	var res *bench.Result
	for i := 0; i < b.N; i++ {
		res = bench.AblationTimeOrderedIDs(e, 5)
	}
	b.Log("\n" + res.Render())
}

func BenchmarkAblationCuratedMixStability(b *testing.B) {
	e := sharedEnv(b)
	var res *bench.Result
	for i := 0; i < b.N; i++ {
		res = bench.AblationCuratedMix(e, 15)
	}
	b.Log("\n" + res.Render())
}
