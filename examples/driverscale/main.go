// Driverscale: the §4.2 dependency-tracking scalability experiment
// (Table 5) — replay a real update stream through the driver with a
// sleeping dummy connector and report ops/second as the partition count
// grows, for 1ms and 100µs simulated transaction latencies.
package main

import (
	"fmt"
	"log"
	"time"

	"ldbcsnb/internal/datagen"
	"ldbcsnb/internal/driver"
)

func main() {
	log.SetFlags(0)

	out := datagen.Generate(datagen.Config{Seed: 21, Persons: 400, Workers: 2})
	_, updates := datagen.Split(out.Data, datagen.UpdateCut)
	if len(updates) > 6000 {
		updates = updates[:6000]
	}
	persons := 0
	for i := range updates {
		if updates[i].IsDependency() {
			persons++
		}
	}
	fmt.Printf("update stream: %d operations (%d dependency ops)\n\n", len(updates), persons)

	fmt.Printf("%-8s", "sleep")
	partitions := []int{1, 2, 4, 8, 12}
	for _, p := range partitions {
		fmt.Printf("%10d", p)
	}
	fmt.Println("\n" + "------------------------------------------------------------------")
	for _, sleep := range []time.Duration{time.Millisecond, 100 * time.Microsecond} {
		fmt.Printf("%-8s", sleep)
		for _, p := range partitions {
			conn := &driver.SleepConnector{Sleep: sleep}
			rep := driver.Run(
				driver.Config{Connector: conn, Streams: p, Mode: driver.ModeUnpaced},
				driver.Partition(updates, p))
			fmt.Printf("%10.0f", rep.OpsPerSec)
		}
		fmt.Println()
	}
	fmt.Println("\npaper (12-core Xeon): 997 -> 11298 ops/s at 1ms, 9745 -> 110837 at 100µs;")
	fmt.Println("sleeping is not CPU-bound, so near-linear scaling holds even on one core.")
}
