// Trending: the event-driven activity simulation of §2.2 (Figure 2a) —
// generate the same network with and without events, chart the monthly
// post volume, and list the biggest simulated events with the observed
// spike around each.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"time"

	"ldbcsnb/internal/datagen"
	"ldbcsnb/internal/dict"
)

func main() {
	log.SetFlags(0)
	run(datagen.Config{Seed: 11, Persons: 250, Workers: 2}, os.Stdout)
}

// run generates the network twice (uniform and event-driven) from base and
// writes the volume chart and event table to w; split from main so the
// example is exercised by the test suite at a smaller scale.
func run(base datagen.Config, w io.Writer) {
	uniform := datagen.Generate(base)
	withEvents := base
	withEvents.Events = true
	spiky := datagen.Generate(withEvents)

	const month = 30 * 24 * 3600 * 1000
	nMonths := int((datagen.SimEnd-datagen.SimStart)/month) + 1
	bucket := func(posts []int64) []int {
		out := make([]int, nMonths)
		for _, t := range posts {
			if i := int((t - datagen.SimStart) / month); i >= 0 && i < nMonths {
				out[i]++
			}
		}
		return out
	}
	var ut, st []int64
	for i := range uniform.Data.Posts {
		ut = append(ut, uniform.Data.Posts[i].CreationDate)
	}
	for i := range spiky.Data.Posts {
		st = append(st, spiky.Data.Posts[i].CreationDate)
	}
	ub, sb := bucket(ut), bucket(st)

	maxV := 1
	for _, v := range sb {
		if v > maxV {
			maxV = v
		}
	}
	fmt.Fprintln(w, "30-day-bucket post volume (u = uniform, # = event-driven):")
	for i := 0; i < nMonths; i++ {
		t := time.UnixMilli(datagen.SimStart + int64(i)*month).UTC()
		nS := sb[i] * 40 / maxV
		nU := ub[i] * 40 / maxV
		fmt.Fprintf(w, "%3d %s  %5d |%s\n", i+1, t.Format("2006-01-02"), sb[i], bar(nS, '#'))
		fmt.Fprintf(w, "               %5d |%s\n", ub[i], bar(nU, 'u'))
	}

	// Largest events and their observed spikes.
	events := append([]datagen.Event(nil), spiky.Events...)
	sort.Slice(events, func(i, j int) bool { return events[i].Magnitude > events[j].Magnitude })
	fmt.Fprintln(w, "\ntop events (topic, time, observed posts about topic within decay window):")
	for i, e := range events {
		if i == 5 {
			break
		}
		hits := 0
		for j := range spiky.Data.Posts {
			p := &spiky.Data.Posts[j]
			if p.Topic == e.Tag && p.CreationDate > e.Time-int64(e.Decay) &&
				p.CreationDate < e.Time+3*int64(e.Decay) {
				hits++
			}
		}
		fmt.Fprintf(w, "  %-14s %s  magnitude %4.1f  posts in window: %d\n",
			dict.Tags[e.Tag].Name,
			time.UnixMilli(e.Time).UTC().Format("2006-01-02"),
			e.Magnitude, hits)
	}
}

func bar(n int, c byte) string {
	if n < 0 {
		n = 0
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = c
	}
	return string(out)
}
