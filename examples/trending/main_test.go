package main

import (
	"bytes"
	"strings"
	"testing"

	"ldbcsnb/internal/datagen"
)

// TestRunSmoke exercises the example end to end at a reduced scale so
// drift against the datagen API breaks CI instead of rotting silently
// (the example is not imported by anything else).
func TestRunSmoke(t *testing.T) {
	var buf bytes.Buffer
	run(datagen.Config{Seed: 11, Persons: 60, Workers: 2}, &buf)
	out := buf.String()

	for _, want := range []string{
		"30-day-bucket post volume",
		"top events (topic, time, observed posts about topic within decay window):",
		"magnitude",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// The event-driven chart renders one '#' bar per month bucket; an
	// empty chart means generation produced no posts at all.
	if !strings.Contains(out, "|#") {
		t.Errorf("no non-empty event-driven bucket bar in output:\n%s", out)
	}
}
