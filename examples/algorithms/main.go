// Algorithms: the SNB-Algorithms workload of §1 — PageRank, community
// detection, clustering coefficient and BFS over the same generated
// network the Interactive workload queries, demonstrating that the
// generator's correlations produce community structure "comparable to
// real data".
package main

import (
	"fmt"
	"log"

	"ldbcsnb/internal/algo"
	"ldbcsnb/internal/datagen"
	"ldbcsnb/internal/schema"
	"ldbcsnb/internal/store"
)

func main() {
	log.SetFlags(0)

	out := datagen.Generate(datagen.Config{Seed: 17, Persons: 300, Workers: 2})
	st := store.New()
	schema.RegisterIndexes(st)
	if err := schema.LoadDimensions(st); err != nil {
		log.Fatal(err)
	}
	if err := schema.Load(st, out.Data); err != nil {
		log.Fatal(err)
	}

	g := algo.ExtractKnows(st)
	fmt.Printf("friendship graph: %d vertices, %d directed edges\n\n", g.N(), len(g.Targets))

	// PageRank: the social hubs.
	pr := g.PageRank(0.85, 1e-9, 100)
	fmt.Println("top-5 persons by PageRank:")
	st.View(func(tx *store.Txn) {
		for rank, v := range algo.TopK(pr, 5) {
			id := g.IDs[v]
			fmt.Printf("  %d. %s %s  rank %.5f  degree %d\n", rank+1,
				tx.Prop(id, store.PropFirstName).Str(),
				tx.Prop(id, store.PropLastName).Str(),
				pr[v], g.Degree(int32(v)))
		}
	})

	// Clustering: homophily creates triangles.
	_, avg := g.ClusteringCoefficient()
	meanDeg := float64(len(g.Targets)) / float64(g.N())
	fmt.Printf("\naverage clustering coefficient: %.4f (random-graph expectation %.4f)\n",
		avg, meanDeg/float64(g.N()))

	// Communities.
	labels, count := g.Communities(50)
	sizes := map[int32]int{}
	for _, l := range labels {
		sizes[l]++
	}
	largest := 0
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	fmt.Printf("label propagation: %d communities, largest %d members\n", count, largest)

	// Components + BFS eccentricity sample.
	_, comps := g.ConnectedComponents()
	fmt.Printf("connected components: %d\n", comps)
	dist := g.BFS(g.IDs[0])
	maxD := int32(0)
	reach := 0
	for _, d := range dist {
		if d > maxD {
			maxD = d
		}
		if d >= 0 {
			reach++
		}
	}
	fmt.Printf("BFS from first person: reaches %d/%d vertices, eccentricity %d\n",
		reach, g.N(), maxD)
}
