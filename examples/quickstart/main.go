// Quickstart: generate a tiny social network, load it into the store, and
// run two Interactive queries (Q2 "friends' newest messages" and Q9
// "latest posts in the 2-hop environment") for one person.
package main

import (
	"fmt"
	"log"
	"time"

	"ldbcsnb/internal/datagen"
	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/schema"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/workload"
)

func main() {
	log.SetFlags(0)

	// 1. Generate a deterministic 150-person network.
	out := datagen.Generate(datagen.Config{Seed: 1, Persons: 150, Workers: 2})
	c := out.Data.Counts()
	fmt.Printf("generated %d persons, %d friendships, %d messages\n",
		c.Persons, c.Friendships, c.Messages())

	// 2. Load it into the transactional graph store.
	st := store.New()
	schema.RegisterIndexes(st)
	if err := schema.LoadDimensions(st); err != nil {
		log.Fatal(err)
	}
	if err := schema.Load(st, out.Data); err != nil {
		log.Fatal(err)
	}

	// 3. Pick the best-connected person.
	deg := map[ids.ID]int{}
	for _, k := range out.Data.Knows {
		deg[k.A]++
		deg[k.B]++
	}
	var start ids.ID
	best := -1
	for p, d := range deg {
		if d > best {
			start, best = p, d
		}
	}

	// 4. Run Q2 and Q9 in one read-only snapshot transaction.
	st.View(func(tx *store.Txn) {
		name := tx.Prop(start, store.PropFirstName).Str() + " " +
			tx.Prop(start, store.PropLastName).Str()
		fmt.Printf("\nstart person: %s (%d friends)\n\n", name, best)

		fmt.Println("Q2 — newest messages from direct friends:")
		for i, row := range workload.Q2(tx, start, datagen.SimEnd) {
			who := tx.Prop(row.Creator, store.PropFirstName).Str()
			fmt.Printf("  %2d. %s at %s (%v)\n", i+1, who,
				time.UnixMilli(row.CreationDate).UTC().Format("2006-01-02 15:04"),
				row.Message.Kind())
			if i == 4 {
				break
			}
		}

		fmt.Println("\nQ9 — latest posts from friends and friends-of-friends:")
		for i, row := range workload.Q9(tx, start, datagen.SimEnd) {
			who := tx.Prop(row.Creator, store.PropFirstName).Str()
			fmt.Printf("  %2d. %s at %s\n", i+1, who,
				time.UnixMilli(row.CreationDate).UTC().Format("2006-01-02 15:04"))
			if i == 4 {
				break
			}
		}
	})
}
