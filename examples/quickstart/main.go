// Quickstart: generate a tiny social network, load it into the store, and
// run two Interactive queries (Q2 "friends' newest messages" and Q9
// "latest posts in the 2-hop environment") for one person.
//
// The queries go through the unified Reader API: each has a single generic
// implementation that runs on either read path. This demo executes them on
// the lock-free frozen snapshot view (the Interactive hot path) and then
// cross-checks the same calls on an MVCC read transaction.
package main

import (
	"fmt"
	"log"
	"reflect"
	"time"

	"ldbcsnb/internal/datagen"
	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/schema"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/workload"
)

func main() {
	log.SetFlags(0)

	// 1. Generate a deterministic 150-person network.
	out := datagen.Generate(datagen.Config{Seed: 1, Persons: 150, Workers: 2})
	c := out.Data.Counts()
	fmt.Printf("generated %d persons, %d friendships, %d messages\n",
		c.Persons, c.Friendships, c.Messages())

	// 2. Load it into the transactional graph store.
	st := store.New()
	schema.RegisterIndexes(st)
	if err := schema.LoadDimensions(st); err != nil {
		log.Fatal(err)
	}
	if err := schema.Load(st, out.Data); err != nil {
		log.Fatal(err)
	}

	// 3. Pick the best-connected person.
	deg := map[ids.ID]int{}
	for _, k := range out.Data.Knows {
		deg[k.A]++
		deg[k.B]++
	}
	var start ids.ID
	best := -1
	for p, d := range deg {
		if d > best {
			start, best = p, d
		}
	}

	// 4. Run Q2 and Q9 on the frozen snapshot view: lock-free reads over
	// the CSR-compacted image of the current commit epoch, with a reusable
	// Scratch carrying the traversal state.
	v := st.CurrentView()
	sc := workload.NewScratch()

	name := v.Prop(start, store.PropFirstName).Str() + " " +
		v.Prop(start, store.PropLastName).Str()
	fmt.Printf("\nstart person: %s (%d friends)\n\n", name, best)

	q2 := workload.Q2(v, sc, start, datagen.SimEnd)
	fmt.Println("Q2 — newest messages from direct friends (view path):")
	for i, row := range q2 {
		who := v.Prop(row.Creator, store.PropFirstName).Str()
		fmt.Printf("  %2d. %s at %s (%v)\n", i+1, who,
			time.UnixMilli(row.CreationDate).UTC().Format("2006-01-02 15:04"),
			row.Message.Kind())
		if i == 4 {
			break
		}
	}

	q9 := workload.Q9(v, sc, start, datagen.SimEnd)
	fmt.Println("\nQ9 — latest posts from friends and friends-of-friends (view path):")
	for i, row := range q9 {
		who := v.Prop(row.Creator, store.PropFirstName).Str()
		fmt.Printf("  %2d. %s at %s\n", i+1, who,
			time.UnixMilli(row.CreationDate).UTC().Format("2006-01-02 15:04"))
		if i == 4 {
			break
		}
	}

	// 5. The same implementations run on an MVCC read transaction — one
	// query definition, two interchangeable readers.
	st.View(func(tx *store.Txn) {
		sameQ2 := reflect.DeepEqual(q2, workload.Q2(tx, sc, start, datagen.SimEnd))
		sameQ9 := reflect.DeepEqual(q9, workload.Q9(tx, sc, start, datagen.SimEnd))
		fmt.Printf("\ntxn path returns identical rows: Q2=%v Q9=%v\n", sameQ2, sameQ9)
	})
}
