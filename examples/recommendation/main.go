// Recommendation: the paper's Query 10 "friend recommendation" scenario —
// find friends-of-friends who post about what a person cares about,
// sweeping the zodiac-sign restriction, and contrast with the Q1
// name-search and Q13 shortest-path primitives.
//
// Everything runs on the frozen snapshot view through the unified Reader
// API: Q10 and Q13 gained the lock-free path with the Reader redesign, so
// a recommendation service built on this loop never takes a store lock.
package main

import (
	"fmt"
	"log"

	"ldbcsnb/internal/datagen"
	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/params"
	"ldbcsnb/internal/schema"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/workload"
)

func main() {
	log.SetFlags(0)

	out := datagen.Generate(datagen.Config{Seed: 3, Persons: 300, Workers: 2})
	st := store.New()
	schema.RegisterIndexes(st)
	if err := schema.LoadDimensions(st); err != nil {
		log.Fatal(err)
	}
	if err := schema.Load(st, out.Data); err != nil {
		log.Fatal(err)
	}

	// Curated parameters: persons whose 2-hop neighbourhood is "typical"
	// (Parameter Curation, §4.1), so the demo is representative.
	tab := params.BuildQ9Table(out.Data)
	curated := tab.Curate(5)

	v := st.CurrentView()
	sc := workload.NewScratch()

	for _, pid := range curated {
		p := ids.ID(pid)
		name := v.Prop(p, store.PropFirstName).Str() + " " + v.Prop(p, store.PropLastName).Str()
		fmt.Printf("recommendations for %s:\n", name)
		found := 0
		for sign := 0; sign < 12 && found < 5; sign++ {
			for _, rec := range workload.Q10(v, sc, p, sign) {
				who := v.Prop(rec.Person, store.PropFirstName).Str() + " " +
					v.Prop(rec.Person, store.PropLastName).Str()
				dist := workload.Q13(v, sc, p, rec.Person)
				fmt.Printf("  %-24s score %4d  common interests %d  distance %d\n",
					who, rec.Score, rec.CommonTags, dist)
				found++
				if found >= 5 {
					break
				}
			}
		}
		if found == 0 {
			fmt.Println("  (no candidates)")
		}
		fmt.Println()
	}

	// Q1: find namesakes near the first curated person.
	p := ids.ID(curated[0])
	first := v.Prop(p, store.PropFirstName).Str()
	rows := workload.Q1(v, sc, p, first)
	fmt.Printf("Q1 — persons named %q within 3 hops of the first person: %d\n", first, len(rows))
	for i, r := range rows {
		fmt.Printf("  %d. %s (distance %d)\n", i+1, r.LastName, r.Distance)
		if i == 4 {
			break
		}
	}
}
