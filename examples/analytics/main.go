// Analytics: run the SNB Business Intelligence workload over a frozen
// snapshot view — serially and morsel-parallel — and show what the graph-
// wide aggregations return.
//
// Every BI query has one generic implementation (internal/bi) that runs on
// the MVCC transaction path, the lock-free serial view path and the
// morsel-parallel view path (internal/exec shards the view's dense node
// ranges across workers, each folding into a private partial aggregate).
// This demo times the serial and parallel view paths per query — on a
// multi-core host the scan-heavy queries speed up with the worker count —
// and prints the head of the posting summary, the engagement ranking and
// the thread-depth histogram.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"ldbcsnb/internal/bi"
	"ldbcsnb/internal/datagen"
	"ldbcsnb/internal/exec"
	"ldbcsnb/internal/schema"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/workload"
)

func main() {
	log.SetFlags(0)

	// 1. Generate and load a deterministic 300-person network.
	out := datagen.Generate(datagen.Config{Seed: 3, Persons: 300, Workers: 2, Events: true})
	c := out.Data.Counts()
	fmt.Printf("generated %d persons, %d messages, %d forums\n", c.Persons, c.Messages(), c.Forums)
	st := store.New()
	schema.RegisterIndexes(st)
	if err := schema.LoadDimensions(st); err != nil {
		log.Fatal(err)
	}
	if err := schema.Load(st, out.Data); err != nil {
		log.Fatal(err)
	}

	// 2. Freeze the current commit epoch and run all eight BI templates
	// through the registry, serial view vs morsel-parallel view.
	v := st.CurrentView()
	sc := workload.NewScratch()
	par := exec.Config{} // GOMAXPROCS workers, default morsel size
	win := int64(120 * 24 * 3600 * 1000)
	params := [bi.NumQueries]bi.Params{
		1: {WindowStart: datagen.SimEnd - 2*win, WindowMillis: win, Limit: 10},
		3: {Limit: 20},
		5: {CreatedBefore: datagen.SimEnd, MaxMessages: 3},
		6: {Limit: 10},
	}
	fmt.Printf("\n%-5s  %10s  %10s  (parallel = %d workers)\n",
		"query", "serial", "parallel", par.NumWorkers())
	for q := range bi.Registry {
		spec := &bi.Registry[q]
		t0 := time.Now()
		serial := spec.RunView(v, sc, params[q])
		dSerial := time.Since(t0)
		t0 = time.Now()
		parallel := spec.RunPar(v, par, params[q])
		dPar := time.Since(t0)
		if serial != parallel {
			log.Fatalf("%s: serial and parallel paths disagree: %+v vs %+v", spec.Name, serial, parallel)
		}
		fmt.Printf("%-5s  %10v  %10v  (%d rows)\n", spec.Name, dSerial.Round(time.Microsecond), dPar.Round(time.Microsecond), serial.Rows)
	}
	if runtime.GOMAXPROCS(0) == 1 {
		fmt.Println("note: single-core host — parallel timings measure scheduling overhead, not speedup")
	}

	// 3. A taste of the results themselves.
	fmt.Println("\nBI1 posting summary (first 3 groups):")
	for i, row := range bi.BI1(v) {
		if i >= 3 {
			break
		}
		kind := "post"
		if row.IsComment {
			kind = "comment"
		}
		fmt.Printf("  %d-%02d %-7s len-class %d: %4d messages, avg length %.1f\n",
			row.Year, int(row.Month), kind, row.LengthClass, row.MessageCount, row.AvgLength)
	}
	fmt.Println("BI4 engagement top 3:")
	for i, row := range bi.BI4(v, 3) {
		fmt.Printf("  #%d person %v: %d messages, %d likes, %d replies (score %d)\n",
			i+1, row.Person, row.Messages, row.Likes, row.Replies, row.Score)
	}
	fmt.Println("BI8 thread depth histogram:")
	for _, row := range bi.BI8(v) {
		fmt.Printf("  depth %d: %d comments\n", row.Depth, row.Comments)
	}
}
